"""Unit tests for the asset-tracking subpackage."""

import math

import pytest

from repro.core.adversary import FlowKnowledge, NaiveAdversary
from repro.net.packet import PacketObservation
from repro.tracking.adversary import (
    TrackingAdversary,
    TrajectoryEstimate,
    mean_localization_error,
)
from repro.tracking.detection import detect_passes
from repro.tracking.trajectory import Trajectory, waypoint_trajectory


class TestTrajectory:
    def test_waypoint_timing_from_speed(self):
        trajectory = waypoint_trajectory([(0.0, 0.0), (3.0, 4.0)], speed=1.0)
        assert trajectory.end_time == pytest.approx(5.0)  # leg length 5

    def test_position_interpolation(self):
        trajectory = waypoint_trajectory([(0.0, 0.0), (10.0, 0.0)], speed=2.0)
        x, y = trajectory.position_at(2.5)  # halfway in time
        assert (x, y) == pytest.approx((5.0, 0.0))

    def test_position_clamped_at_ends(self):
        trajectory = waypoint_trajectory([(0.0, 0.0), (10.0, 0.0)], speed=1.0)
        assert trajectory.position_at(-5.0) == (0.0, 0.0)
        assert trajectory.position_at(99.0) == (10.0, 0.0)

    def test_multi_leg(self):
        trajectory = waypoint_trajectory(
            [(0.0, 0.0), (10.0, 0.0), (10.0, 10.0)], speed=1.0, start_time=100.0
        )
        assert trajectory.start_time == 100.0
        assert trajectory.end_time == pytest.approx(120.0)
        assert trajectory.position_at(115.0) == pytest.approx((10.0, 5.0))

    def test_total_length(self):
        trajectory = waypoint_trajectory(
            [(0.0, 0.0), (3.0, 4.0), (3.0, 10.0)], speed=1.0
        )
        assert trajectory.total_length() == pytest.approx(11.0)

    def test_sample_times_cover_span(self):
        trajectory = waypoint_trajectory([(0.0, 0.0), (10.0, 0.0)], speed=1.0)
        grid = trajectory.sample_times(2.5)
        assert grid[0] == 0.0 and grid[-1] == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            waypoint_trajectory([(0.0, 0.0)], speed=1.0)
        with pytest.raises(ValueError):
            waypoint_trajectory([(0.0, 0.0), (0.0, 0.0)], speed=1.0)
        with pytest.raises(ValueError):
            waypoint_trajectory([(0.0, 0.0), (1.0, 0.0)], speed=0.0)
        with pytest.raises(ValueError):
            Trajectory(times=(0.0, 0.0), points=((0.0, 0.0), (1.0, 1.0)))
        with pytest.raises(ValueError):
            Trajectory(times=(0.0,), points=((0.0, 0.0),))


class TestDetection:
    POSITIONS = {1: (5.0, 0.0), 2: (20.0, 0.0), 3: (5.0, 50.0)}

    def test_close_sensor_fires_far_sensor_does_not(self):
        trajectory = waypoint_trajectory([(0.0, 0.0), (10.0, 0.0)], speed=1.0)
        detections = detect_passes(
            trajectory, self.POSITIONS, detection_radius=2.0
        )
        fired = {d.node_id for d in detections}
        assert 1 in fired and 3 not in fired

    def test_detection_at_closest_approach(self):
        trajectory = waypoint_trajectory([(0.0, 0.0), (10.0, 0.0)], speed=1.0)
        detections = detect_passes(
            trajectory, {1: (5.0, 1.0)}, detection_radius=2.0
        )
        assert len(detections) == 1
        assert detections[0].time == pytest.approx(5.0, abs=0.5)
        assert detections[0].distance == pytest.approx(1.0, abs=0.05)

    def test_two_passes_fire_twice(self):
        trajectory = waypoint_trajectory(
            [(0.0, 0.0), (10.0, 0.0), (0.0, 0.1)], speed=1.0
        )
        detections = detect_passes(
            trajectory, {1: (5.0, 0.0)}, detection_radius=1.0, hold_off=3.0
        )
        assert len(detections) == 2

    def test_hold_off_suppresses_rapid_refires(self):
        trajectory = waypoint_trajectory(
            [(0.0, 0.0), (10.0, 0.0), (0.0, 0.1)], speed=1.0
        )
        detections = detect_passes(
            trajectory, {1: (5.0, 0.0)}, detection_radius=1.0, hold_off=1000.0
        )
        assert len(detections) == 1

    def test_sorted_by_time(self):
        trajectory = waypoint_trajectory([(0.0, 0.0), (30.0, 0.0)], speed=1.0)
        positions = {i: (float(5 * i), 0.5) for i in range(1, 6)}
        detections = detect_passes(trajectory, positions, detection_radius=1.0)
        times = [d.time for d in detections]
        assert times == sorted(times)

    def test_validation(self):
        trajectory = waypoint_trajectory([(0.0, 0.0), (1.0, 0.0)], speed=1.0)
        with pytest.raises(ValueError):
            detect_passes(trajectory, self.POSITIONS, detection_radius=0.0)
        with pytest.raises(ValueError):
            detect_passes(trajectory, self.POSITIONS, 1.0, hold_off=-1.0)


class TestTrajectoryEstimate:
    def test_interpolation(self):
        estimate = TrajectoryEstimate(
            times=(0.0, 10.0), points=((0.0, 0.0), (10.0, 0.0))
        )
        assert estimate.position_at(5.0) == pytest.approx((5.0, 0.0))

    def test_clamping(self):
        estimate = TrajectoryEstimate(times=(5.0,), points=((3.0, 4.0),))
        assert estimate.position_at(0.0) == (3.0, 4.0)
        assert estimate.position_at(99.0) == (3.0, 4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TrajectoryEstimate(times=(), points=())
        with pytest.raises(ValueError):
            TrajectoryEstimate(times=(1.0,), points=((0.0, 0.0), (1.0, 1.0)))


class TestTrackingAdversary:
    def _obs(self, arrival, origin, hops=2):
        return PacketObservation(
            arrival_time=arrival, previous_hop=0, origin=origin,
            routing_seq=0, hop_count=hops,
        )

    def test_exact_times_give_exact_pins(self):
        positions = {10: (0.0, 0.0), 11: (10.0, 0.0)}
        adversary = TrackingAdversary(
            NaiveAdversary(FlowKnowledge(transmission_delay=1.0)), positions
        )
        # Packets created at t=0 and t=10, 2 hops each -> arrive +2.
        estimate = adversary.reconstruct(
            [self._obs(2.0, 10), self._obs(12.0, 11)]
        )
        assert estimate.times == (0.0, 10.0)
        assert estimate.position_at(5.0) == pytest.approx((5.0, 0.0))

    def test_wrong_times_displace_the_track(self):
        """A time estimator biased by +T shifts every pin by T."""
        positions = {10: (0.0, 0.0), 11: (10.0, 0.0)}
        adversary = TrackingAdversary(
            NaiveAdversary(FlowKnowledge(transmission_delay=0.0)), positions
        )
        estimate = adversary.reconstruct(
            [self._obs(2.0, 10), self._obs(12.0, 11)]
        )
        # Pins at 2 and 12 instead of 0 and 10: at true time 10 the
        # adversary still thinks the asset is mid-path.
        x, _ = estimate.position_at(10.0)
        assert x == pytest.approx(8.0)

    def test_unknown_origin_raises(self):
        adversary = TrackingAdversary(
            NaiveAdversary(FlowKnowledge()), positions={1: (0.0, 0.0)}
        )
        with pytest.raises(KeyError):
            adversary.reconstruct([self._obs(1.0, origin=99)])

    def test_empty_observations_rejected(self):
        adversary = TrackingAdversary(
            NaiveAdversary(FlowKnowledge()), positions={1: (0.0, 0.0)}
        )
        with pytest.raises(ValueError):
            adversary.reconstruct([])


class TestLocalizationError:
    def test_perfect_estimate_scores_zero(self):
        truth = waypoint_trajectory([(0.0, 0.0), (10.0, 0.0)], speed=1.0)
        estimate = TrajectoryEstimate(
            times=(0.0, 10.0), points=((0.0, 0.0), (10.0, 0.0))
        )
        assert mean_localization_error(truth, estimate, time_step=1.0) == pytest.approx(
            0.0
        )

    def test_constant_offset_scores_offset(self):
        truth = waypoint_trajectory([(0.0, 0.0), (10.0, 0.0)], speed=1.0)
        estimate = TrajectoryEstimate(
            times=(0.0, 10.0), points=((0.0, 3.0), (10.0, 3.0))
        )
        assert mean_localization_error(truth, estimate, time_step=1.0) == pytest.approx(
            3.0
        )

    def test_time_shift_costs_speed_times_shift(self):
        """A 2-unit time shift at speed 1 costs ~2 units of error
        (away from the clamped ends)."""
        truth = waypoint_trajectory([(0.0, 0.0), (100.0, 0.0)], speed=1.0)
        estimate = TrajectoryEstimate(
            times=(2.0, 102.0), points=((0.0, 0.0), (100.0, 0.0))
        )
        error = mean_localization_error(truth, estimate, time_step=1.0)
        assert 1.5 < error <= 2.0


class TestExperimentShape:
    def test_rcad_inflates_localization_error(self):
        from repro.experiments.asset_tracking import asset_tracking_experiment

        rows = asset_tracking_experiment(speeds=(0.05,), seed=4)
        by_case = {row.case: row for row in rows}
        assert by_case["no-delay"].time_rmse == pytest.approx(0.0, abs=1e-9)
        assert by_case["rcad"].time_rmse > 50.0
        assert (
            by_case["rcad"].localization_error
            > 2 * by_case["no-delay"].localization_error
        )

    def test_faster_asset_more_spatial_ambiguity(self):
        from repro.experiments.asset_tracking import asset_tracking_experiment

        rows = asset_tracking_experiment(speeds=(0.02, 0.08), seed=5)
        rcad = {row.asset_speed: row for row in rows if row.case == "rcad"}
        assert rcad[0.08].localization_error > rcad[0.02].localization_error
