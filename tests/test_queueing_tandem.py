"""Unit tests for tandem paths and routing-tree queue models."""

import numpy as np
import pytest
from scipy import integrate

from repro.queueing.mminf import MMInfinityQueue
from repro.queueing.mmkk import MMkkQueue
from repro.queueing.tandem import QueueTreeModel, TandemPathModel, kleinrock_note


class TestTandemPath:
    def test_paper_s1_path_latency(self):
        """15 hops, tau=1, 1/mu=30 -> mean end-to-end delay 465."""
        path = TandemPathModel(service_rates=[1 / 30.0] * 15, arrival_rate=0.5)
        assert path.mean_end_to_end_delay() == pytest.approx(465.0)

    def test_mean_artificial_delay_sums_means(self):
        path = TandemPathModel(service_rates=[0.1, 0.2, 0.5], arrival_rate=1.0)
        assert path.mean_artificial_delay() == pytest.approx(10 + 5 + 2)

    def test_variance_sums_squares(self):
        path = TandemPathModel(service_rates=[0.1, 0.2], arrival_rate=1.0)
        assert path.artificial_delay_variance() == pytest.approx(100 + 25)

    def test_total_occupancy_sums_rhos(self):
        path = TandemPathModel(service_rates=[1 / 30.0] * 15, arrival_rate=0.5)
        assert path.total_mean_occupancy() == pytest.approx(15 * 15.0)

    def test_node_queue_burke_composition(self):
        """Every node sees the same Poisson rate (Burke's theorem)."""
        path = TandemPathModel(service_rates=[0.5, 0.1, 0.9], arrival_rate=0.3)
        for i in range(3):
            queue = path.node_queue(i)
            assert isinstance(queue, MMInfinityQueue)
            assert queue.arrival_rate == 0.3

    def test_hop_count(self):
        assert TandemPathModel([1.0] * 7, arrival_rate=0.1).hop_count == 7

    def test_equal_rate_density_is_erlang(self):
        path = TandemPathModel(service_rates=[0.5] * 3, arrival_rate=0.1)
        total, _ = integrate.quad(path.end_to_end_delay_pdf, 0, 100)
        assert total == pytest.approx(1.0, abs=1e-6)
        mean, _ = integrate.quad(lambda y: y * path.end_to_end_delay_pdf(y), 0, 200)
        assert mean == pytest.approx(path.mean_artificial_delay(), rel=1e-4)

    def test_distinct_rate_density_is_hypoexponential(self):
        path = TandemPathModel(service_rates=[0.2, 0.5, 1.0], arrival_rate=0.1)
        total, _ = integrate.quad(path.end_to_end_delay_pdf, 0, 200)
        assert total == pytest.approx(1.0, abs=1e-6)
        assert path.end_to_end_delay_pdf(-1.0) == 0.0

    def test_mixed_repeated_rates_unsupported(self):
        path = TandemPathModel(service_rates=[0.2, 0.2, 1.0], arrival_rate=0.1)
        with pytest.raises(NotImplementedError):
            path.end_to_end_delay_pdf(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TandemPathModel(service_rates=[], arrival_rate=0.1)
        with pytest.raises(ValueError):
            TandemPathModel(service_rates=[0.0], arrival_rate=0.1)
        with pytest.raises(ValueError):
            TandemPathModel(service_rates=[1.0], arrival_rate=-0.1)


class TestQueueTree:
    def _star(self):
        """Two leaves feeding one relay feeding the sink (node 0)."""
        return QueueTreeModel(
            parent={1: 0, 2: 1, 3: 1},
            injection_rates={2: 0.2, 3: 0.3},
            default_service_rate=1.0 / 30.0,
        )

    def test_superposition_at_merge(self):
        tree = self._star()
        assert tree.arrival_rate(2) == pytest.approx(0.2)
        assert tree.arrival_rate(3) == pytest.approx(0.3)
        assert tree.arrival_rate(1) == pytest.approx(0.5)
        assert tree.arrival_rate(0) == pytest.approx(0.5)

    def test_offered_load_and_occupancy(self):
        tree = self._star()
        assert tree.offered_load(1) == pytest.approx(15.0)
        assert tree.mean_occupancy(1) == pytest.approx(15.0)

    def test_unbounded_nodes_have_zero_blocking(self):
        assert self._star().blocking_probability(1) == 0.0

    def test_bounded_node_thins_downstream(self):
        tree = QueueTreeModel(
            parent={1: 0, 2: 1},
            injection_rates={2: 0.5},
            capacities={2: 10},
            default_service_rate=1.0 / 30.0,
        )
        blocking = tree.blocking_probability(2)
        assert blocking > 0.3  # rho = 15 on 10 slots
        assert tree.carried_rate(2) == pytest.approx(0.5 * (1 - blocking))
        assert tree.arrival_rate(1) == pytest.approx(0.5 * (1 - blocking))

    def test_node_model_types(self):
        tree = QueueTreeModel(
            parent={1: 0},
            injection_rates={1: 0.1},
            capacities={1: 5},
            default_service_rate=1.0,
        )
        assert isinstance(tree.node_model(1), MMkkQueue)
        assert isinstance(tree.node_model(0), MMInfinityQueue)

    def test_path_to_root(self):
        tree = self._star()
        assert tree.path_to_root(2) == [2, 1]
        assert tree.path_to_root(0) == [0]

    def test_mean_path_delay(self):
        tree = self._star()
        # Node 2 buffers at itself and at node 1: 2 hops, 2 * 30 delay.
        assert tree.mean_path_delay(2) == pytest.approx(2 * 1.0 + 60.0)

    def test_children_sorted(self):
        assert self._star().children(1) == [2, 3]

    def test_total_buffered(self):
        tree = self._star()
        expected = sum(tree.mean_occupancy(n) for n in tree.nodes())
        assert tree.total_buffered_packets() == pytest.approx(expected)

    def test_per_node_service_rates(self):
        tree = QueueTreeModel(
            parent={1: 0},
            injection_rates={1: 0.5},
            service_rates={1: 0.25},
            default_service_rate=1.0,
        )
        assert tree.offered_load(1) == pytest.approx(2.0)
        assert tree.offered_load(0) == pytest.approx(0.5)

    def test_paper_trunk_aggregation(self, paper_tree, paper_deployment):
        """On the Figure 1 tree the sink-adjacent node carries all 4 flows."""
        sources = {
            paper_deployment.node_for_label(label): 0.25
            for label in ("S1", "S2", "S3", "S4")
        }
        model = QueueTreeModel(
            parent=dict(paper_tree.parent),
            injection_rates=sources,
            default_service_rate=1.0 / 30.0,
        )
        last_hop = paper_tree.path(paper_deployment.node_for_label("S1"))[-2]
        assert model.arrival_rate(last_hop) == pytest.approx(1.0)

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            QueueTreeModel(parent={1: 2, 2: 1}, injection_rates={1: 0.1})

    def test_negative_injection_rejected(self):
        with pytest.raises(ValueError):
            QueueTreeModel(parent={1: 0}, injection_rates={1: -0.1})


def test_kleinrock_note_mentions_poisson():
    assert "Poisson" in kleinrock_note()
