"""Unit tests for the WSN simulator."""

import pytest

from repro.core.planner import UniformPlanner
from repro.net.routing import shortest_path_tree
from repro.net.topology import line_deployment
from repro.sim.config import BufferSpec, FlowSpec, SimulationConfig
from repro.sim.simulator import SensorNetworkSimulator
from repro.traffic.generators import PeriodicTraffic, PoissonTraffic


def _line_config(hops=5, n_packets=20, interval=10.0, case="no-delay",
                 mean_delay=30.0, capacity=10, seed=0, **overrides):
    deployment = line_deployment(hops=hops)
    tree = shortest_path_tree(deployment)
    flows = [
        FlowSpec(
            flow_id=1, source=0,
            traffic=PeriodicTraffic(interval=interval), n_packets=n_packets,
        )
    ]
    if case == "no-delay":
        plan, buffers = None, BufferSpec(kind="infinite")
    elif case == "unlimited":
        plan = UniformPlanner(mean_delay).plan(tree, {0: 1.0 / interval})
        buffers = BufferSpec(kind="infinite")
    elif case == "rcad":
        plan = UniformPlanner(mean_delay).plan(tree, {0: 1.0 / interval})
        buffers = BufferSpec(kind="rcad", capacity=capacity)
    else:  # drop-tail
        plan = UniformPlanner(mean_delay).plan(tree, {0: 1.0 / interval})
        buffers = BufferSpec(kind="drop-tail", capacity=capacity)
    args = dict(
        deployment=deployment, tree=tree, flows=flows,
        delay_plan=plan, buffers=buffers, seed=seed,
    )
    args.update(overrides)
    return SimulationConfig(**args)


class TestNoDelayLine:
    def test_latency_is_exactly_hops_times_tau(self):
        result = SensorNetworkSimulator(_line_config(hops=5)).run()
        assert all(r.latency == pytest.approx(5.0) for r in result.records)

    def test_all_packets_delivered(self):
        result = SensorNetworkSimulator(_line_config(n_packets=33)).run()
        assert result.delivered_count() == 33
        assert result.drop_count() == 0

    def test_hop_count_in_header(self):
        result = SensorNetworkSimulator(_line_config(hops=7)).run()
        assert all(o.hop_count == 7 for o in result.observations)

    def test_origin_preserved(self):
        result = SensorNetworkSimulator(_line_config()).run()
        assert all(o.origin == 0 for o in result.observations)

    def test_fifo_order_preserved_with_no_delay(self):
        result = SensorNetworkSimulator(_line_config(n_packets=10)).run()
        packet_ids = [r.packet_id for r in result.records]
        assert packet_ids == sorted(packet_ids)

    def test_custom_transmission_delay(self):
        config = _line_config(hops=4, transmission_delay=2.5)
        result = SensorNetworkSimulator(config).run()
        assert all(r.latency == pytest.approx(10.0) for r in result.records)


class TestDelayedLine:
    def test_mean_latency_near_analytic(self):
        # 5 hops: mean = 5 * (1 + 30) = 155.
        config = _line_config(hops=5, n_packets=400, case="unlimited", seed=3)
        result = SensorNetworkSimulator(config).run()
        assert result.mean_latency() == pytest.approx(155.0, rel=0.08)

    def test_latencies_vary(self):
        config = _line_config(hops=5, n_packets=50, case="unlimited")
        result = SensorNetworkSimulator(config).run()
        latencies = {round(r.latency, 6) for r in result.records}
        assert len(latencies) > 40

    def test_observations_sorted_by_arrival(self):
        config = _line_config(hops=5, n_packets=100, case="unlimited")
        result = SensorNetworkSimulator(config).run()
        arrivals = [o.arrival_time for o in result.observations]
        assert arrivals == sorted(arrivals)

    def test_reordering_happens_under_random_delays(self):
        """Independent exponential delays break creation order (§3.2)."""
        config = _line_config(hops=5, n_packets=200, interval=2.0, case="unlimited")
        result = SensorNetworkSimulator(config).run()
        packet_ids = [r.packet_id for r in result.records]
        assert packet_ids != sorted(packet_ids)

    def test_records_aligned_with_observations(self):
        config = _line_config(hops=3, n_packets=50, case="unlimited")
        result = SensorNetworkSimulator(config).run()
        assert len(result.records) == len(result.observations)
        for record, obs in zip(result.records, result.observations):
            assert record.delivered_at == obs.arrival_time


class TestDeterminism:
    def test_same_seed_same_run(self):
        a = SensorNetworkSimulator(_line_config(case="rcad", seed=7, interval=2.0)).run()
        b = SensorNetworkSimulator(_line_config(case="rcad", seed=7, interval=2.0)).run()
        assert [r.delivered_at for r in a.records] == [r.delivered_at for r in b.records]
        assert a.total_preemptions() == b.total_preemptions()

    def test_different_seed_different_run(self):
        a = SensorNetworkSimulator(_line_config(case="unlimited", seed=1)).run()
        b = SensorNetworkSimulator(_line_config(case="unlimited", seed=2)).run()
        assert [r.delivered_at for r in a.records] != [r.delivered_at for r in b.records]

    def test_simulator_is_single_use(self):
        simulator = SensorNetworkSimulator(_line_config())
        simulator.run()
        with pytest.raises(RuntimeError):
            simulator.run()


class TestRcadBehaviour:
    def test_rcad_never_drops(self):
        config = _line_config(case="rcad", interval=1.0, n_packets=300, capacity=3)
        result = SensorNetworkSimulator(config).run()
        assert result.delivered_count() == 300
        assert result.drop_count() == 0
        assert result.total_preemptions() > 0

    def test_preemptions_recorded_per_packet(self):
        config = _line_config(case="rcad", interval=1.0, n_packets=300, capacity=3)
        result = SensorNetworkSimulator(config).run()
        assert any(r.preemptions_experienced > 0 for r in result.records)

    def test_rcad_latency_below_unlimited_at_high_load(self):
        rcad = SensorNetworkSimulator(
            _line_config(case="rcad", interval=1.0, n_packets=300, capacity=5)
        ).run()
        unlimited = SensorNetworkSimulator(
            _line_config(case="unlimited", interval=1.0, n_packets=300)
        ).run()
        assert rcad.mean_latency() < unlimited.mean_latency()

    def test_no_preemption_at_light_load(self):
        config = _line_config(case="rcad", interval=100.0, n_packets=30)
        result = SensorNetworkSimulator(config).run()
        assert result.total_preemptions() == 0


class TestDropTailBehaviour:
    def test_drops_recorded(self):
        config = _line_config(case="drop-tail", interval=1.0, n_packets=300, capacity=3)
        result = SensorNetworkSimulator(config).run()
        assert result.drop_count() > 0
        assert result.delivered_count() + result.drop_count() == 300

    def test_drop_metadata(self):
        config = _line_config(case="drop-tail", interval=1.0, n_packets=200, capacity=2)
        result = SensorNetworkSimulator(config).run()
        drop = result.dropped[0]
        assert drop.flow_id == 1
        assert drop.dropped_at >= drop.created_at


class TestNodeStats:
    def test_occupancy_tracked_for_buffering_nodes(self):
        config = _line_config(case="unlimited", interval=2.0, n_packets=300, seed=5)
        result = SensorNetworkSimulator(config).run()
        source_stats = result.node_stats[0]
        assert source_stats.admitted == 300
        assert source_stats.mean_occupancy > 0
        assert source_stats.peak_occupancy >= 1

    def test_no_stats_without_delay_plan(self):
        result = SensorNetworkSimulator(_line_config(case="no-delay")).run()
        assert result.node_stats == {}

    def test_end_time_and_event_count(self):
        result = SensorNetworkSimulator(_line_config(n_packets=10)).run()
        assert result.end_time > 0
        assert result.events_processed >= 10 * 5  # one per hop per packet


class TestSealedPayloads:
    def test_sealed_run_matches_unsealed_timing(self):
        sealed = SensorNetworkSimulator(
            _line_config(case="unlimited", n_packets=40, seal_payloads=True)
        ).run()
        plain = SensorNetworkSimulator(
            _line_config(case="unlimited", n_packets=40, seal_payloads=False)
        ).run()
        assert [r.delivered_at for r in sealed.records] == [
            r.delivered_at for r in plain.records
        ]

    def test_sealed_payload_verified_at_sink(self):
        config = _line_config(case="no-delay", n_packets=5, seal_payloads=True)
        result = SensorNetworkSimulator(config).run()
        assert result.delivered_count() == 5  # decryption cross-check passed


class TestHorizonGuard:
    def test_exceeding_horizon_raises(self):
        config = _line_config(case="unlimited", n_packets=50, max_sim_time=20.0)
        with pytest.raises(RuntimeError):
            SensorNetworkSimulator(config).run()


class TestMultiFlow:
    def test_poisson_flows_all_delivered(self):
        deployment = line_deployment(hops=6)
        tree = shortest_path_tree(deployment)
        flows = [
            FlowSpec(flow_id=1, source=0, traffic=PoissonTraffic(0.2), n_packets=50),
            FlowSpec(flow_id=2, source=2, traffic=PoissonTraffic(0.1), n_packets=30),
        ]
        config = SimulationConfig(
            deployment=deployment, tree=tree, flows=flows,
            delay_plan=UniformPlanner(10.0).plan(tree, {0: 0.2, 2: 0.1}),
            buffers=BufferSpec(kind="rcad", capacity=5), seed=4,
        )
        result = SensorNetworkSimulator(config).run()
        assert result.delivered_count(flow_id=1) == 50
        assert result.delivered_count(flow_id=2) == 30
        assert {o.hop_count for o in result.flow_observations(1)} == {6}
        assert {o.hop_count for o in result.flow_observations(2)} == {4}

    def test_flow_filters_are_consistent(self):
        deployment = line_deployment(hops=4)
        tree = shortest_path_tree(deployment)
        flows = [
            FlowSpec(flow_id=1, source=0, traffic=PeriodicTraffic(5.0), n_packets=20),
            FlowSpec(flow_id=2, source=1, traffic=PeriodicTraffic(7.0), n_packets=10),
        ]
        config = SimulationConfig(
            deployment=deployment, tree=tree, flows=flows,
            delay_plan=None, buffers=BufferSpec(kind="infinite"), seed=0,
        )
        result = SensorNetworkSimulator(config).run()
        assert result.flow_ids() == [1, 2]
        indices = result.flow_indices(2)
        assert all(result.records[i].flow_id == 2 for i in indices)
        assert len(result.flow_records(1)) == 20
