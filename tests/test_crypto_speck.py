"""Unit tests for the Speck64/128 block cipher."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.speck import Speck64_128

# Official Speck64/128 test vector (Beaulieu et al., 2013), little-endian
# byte layout: key 1b1a1918 13121110 0b0a0908 03020100, plaintext
# "eans Fat" segment 3b726574 7475432d, ciphertext 8c6fa548 454e028b.
VECTOR_KEY = bytes(
    [0x00, 0x01, 0x02, 0x03, 0x08, 0x09, 0x0A, 0x0B,
     0x10, 0x11, 0x12, 0x13, 0x18, 0x19, 0x1A, 0x1B]
)
VECTOR_PLAINTEXT = bytes([0x2D, 0x43, 0x75, 0x74, 0x74, 0x65, 0x72, 0x3B])
VECTOR_CIPHERTEXT = bytes([0x8B, 0x02, 0x4E, 0x45, 0x48, 0xA5, 0x6F, 0x8C])


class TestSpeckVectors:
    def test_official_test_vector_encrypt(self):
        cipher = Speck64_128(VECTOR_KEY)
        assert cipher.encrypt_block(VECTOR_PLAINTEXT) == VECTOR_CIPHERTEXT

    def test_official_test_vector_decrypt(self):
        cipher = Speck64_128(VECTOR_KEY)
        assert cipher.decrypt_block(VECTOR_CIPHERTEXT) == VECTOR_PLAINTEXT


class TestSpeckBehaviour:
    def test_roundtrip(self):
        cipher = Speck64_128(bytes(range(16)))
        block = b"\x01\x02\x03\x04\x05\x06\x07\x08"
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_encryption_changes_block(self):
        cipher = Speck64_128(bytes(16))
        block = bytes(8)
        assert cipher.encrypt_block(block) != block

    def test_different_keys_differ(self):
        block = b"constant"
        a = Speck64_128(bytes(16)).encrypt_block(block)
        b = Speck64_128(bytes([1]) + bytes(15)).encrypt_block(block)
        assert a != b

    def test_deterministic(self):
        cipher = Speck64_128(bytes(range(16)))
        assert cipher.encrypt_block(b"12345678") == cipher.encrypt_block(b"12345678")

    def test_single_bit_avalanche(self):
        """Flipping one plaintext bit should flip roughly half the output."""
        cipher = Speck64_128(bytes(range(16)))
        a = cipher.encrypt_block(bytes(8))
        b = cipher.encrypt_block(bytes([1]) + bytes(7))
        differing = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
        assert 16 <= differing <= 48  # 64-bit block, expect ~32

    def test_wrong_key_length_rejected(self):
        with pytest.raises(ValueError):
            Speck64_128(bytes(15))
        with pytest.raises(ValueError):
            Speck64_128(bytes(17))

    def test_non_bytes_key_rejected(self):
        with pytest.raises(TypeError):
            Speck64_128("0123456789abcdef")  # type: ignore[arg-type]

    def test_wrong_block_length_rejected(self):
        cipher = Speck64_128(bytes(16))
        with pytest.raises(ValueError):
            cipher.encrypt_block(bytes(7))
        with pytest.raises(ValueError):
            cipher.decrypt_block(bytes(9))

    @given(st.binary(min_size=8, max_size=8), st.binary(min_size=16, max_size=16))
    def test_roundtrip_property(self, block, key):
        cipher = Speck64_128(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @given(st.binary(min_size=8, max_size=8))
    def test_encrypt_is_permutation(self, block):
        """Distinct plaintexts map to distinct ciphertexts."""
        cipher = Speck64_128(bytes(range(16)))
        other = bytes([(block[0] + 1) % 256]) + block[1:]
        assert cipher.encrypt_block(block) != cipher.encrypt_block(other)
