"""Tests for ASCII chart rendering."""

import pytest

from repro.analysis.charts import render_chart
from repro.analysis.records import ExperimentSeries, ExperimentTable


def _table():
    table = ExperimentTable("Demo", "1/lambda", "MSE")
    table.add(ExperimentSeries("low", [2.0, 4.0], [10.0, 5.0]))
    table.add(ExperimentSeries("high", [2.0, 4.0], [100.0, 50.0]))
    return table


class TestRenderChart:
    def test_contains_title_labels_and_values(self):
        text = render_chart(_table())
        assert "Demo" in text
        assert "low" in text and "high" in text
        assert "100" in text

    def test_longest_bar_belongs_to_peak(self):
        text = render_chart(_table(), width=40)
        lines = [line for line in text.splitlines() if "|" in line]
        bar_lengths = {
            line.split("|")[0].strip(): line.split("|")[1].count("█")
            for line in lines
        }
        # The peak value (high at x=2) gets the full width.
        peak_line = [l for l in lines if "100" in l][0]
        assert peak_line.split("|")[1].count("█") == 40

    def test_bars_scale_proportionally(self):
        text = render_chart(_table(), width=40)
        lines = [line for line in text.splitlines() if "|" in line]
        low_at_2 = [l for l in lines if l.strip().startswith("low")][0]
        # 10 / 100 of 40 cells = 4 cells.
        assert low_at_2.split("|")[1].count("█") == 4

    def test_log_scale_compresses(self):
        linear = render_chart(_table(), width=40, log_scale=False)
        logged = render_chart(_table(), width=40, log_scale=True)
        low_linear = [l for l in linear.splitlines() if l.strip().startswith("low")][0]
        low_logged = [l for l in logged.splitlines() if l.strip().startswith("low")][0]
        assert low_logged.split("|")[1].count("█") > low_linear.split("|")[1].count("█")

    def test_zero_values_draw_empty_bars(self):
        table = ExperimentTable("Z", "x", "y")
        table.add(ExperimentSeries("zeros", [1.0], [0.0]))
        text = render_chart(table)
        assert "█" not in text

    def test_validation(self):
        with pytest.raises(ValueError):
            render_chart(_table(), width=2)
        with pytest.raises(ValueError):
            render_chart(ExperimentTable("E", "x", "y"))
        table = ExperimentTable("N", "x", "y")
        table.add(ExperimentSeries("neg", [1.0], [-1.0]))
        with pytest.raises(ValueError):
            render_chart(table)

    def test_cli_chart_flag(self, capsys):
        from repro.cli import main

        main(["fig3", "--packets", "40", "--interarrivals", "4",
              "--seed", "1", "--chart"])
        out = capsys.readouterr().out
        assert "█" in out or "log scale" in out
