"""Unit tests for RCAD victim-selection policies."""

import numpy as np
import pytest

from repro.core.buffers import BufferedEntry
from repro.core.victim import (
    LongestRemainingDelay,
    NewestArrival,
    OldestArrival,
    RandomVictim,
    ShortestRemainingDelay,
)


def _entry(entry_id, arrival, release):
    return BufferedEntry(
        entry_id=entry_id, payload=f"p{entry_id}", arrival_time=arrival,
        release_time=release,
    )


ENTRIES = [
    _entry(0, arrival=1.0, release=20.0),
    _entry(1, arrival=3.0, release=5.0),   # shortest remaining
    _entry(2, arrival=2.0, release=40.0),  # longest remaining
    _entry(3, arrival=0.5, release=30.0),  # oldest arrival
    _entry(4, arrival=4.0, release=25.0),  # newest arrival
]

RNG = np.random.Generator(np.random.PCG64(0))


class TestDeterministicPolicies:
    def test_shortest_remaining(self):
        assert ShortestRemainingDelay().select(ENTRIES, now=4.0, rng=RNG).entry_id == 1

    def test_longest_remaining(self):
        assert LongestRemainingDelay().select(ENTRIES, now=4.0, rng=RNG).entry_id == 2

    def test_oldest_arrival(self):
        assert OldestArrival().select(ENTRIES, now=4.0, rng=RNG).entry_id == 3

    def test_newest_arrival(self):
        assert NewestArrival().select(ENTRIES, now=4.0, rng=RNG).entry_id == 4

    def test_single_entry(self):
        only = [ENTRIES[0]]
        for policy in (
            ShortestRemainingDelay(),
            LongestRemainingDelay(),
            OldestArrival(),
            NewestArrival(),
            RandomVictim(),
        ):
            assert policy.select(only, now=1.0, rng=RNG) is ENTRIES[0]

    def test_tie_broken_by_entry_id(self):
        tied = [_entry(7, 0.0, 10.0), _entry(3, 0.0, 10.0)]
        assert ShortestRemainingDelay().select(tied, now=0.0, rng=RNG).entry_id == 3
        assert OldestArrival().select(tied, now=0.0, rng=RNG).entry_id == 3

    def test_policies_do_not_mutate_entries(self):
        snapshot = [(e.entry_id, e.release_time) for e in ENTRIES]
        ShortestRemainingDelay().select(ENTRIES, now=4.0, rng=RNG)
        assert [(e.entry_id, e.release_time) for e in ENTRIES] == snapshot

    def test_names(self):
        assert ShortestRemainingDelay().name == "shortest-remaining"
        assert LongestRemainingDelay().name == "longest-remaining"
        assert RandomVictim().name == "random"
        assert OldestArrival().name == "oldest-arrival"
        assert NewestArrival().name == "newest-arrival"


class TestRandomVictim:
    def test_selects_among_entries(self):
        rng = np.random.Generator(np.random.PCG64(1))
        chosen = {RandomVictim().select(ENTRIES, 4.0, rng).entry_id for _ in range(200)}
        assert chosen == {0, 1, 2, 3, 4}

    def test_reproducible_with_seed(self):
        a = np.random.Generator(np.random.PCG64(5))
        b = np.random.Generator(np.random.PCG64(5))
        policy = RandomVictim()
        seq_a = [policy.select(ENTRIES, 4.0, a).entry_id for _ in range(20)]
        seq_b = [policy.select(ENTRIES, 4.0, b).entry_id for _ in range(20)]
        assert seq_a == seq_b


class TestEmptyBuffer:
    @pytest.mark.parametrize(
        "policy",
        [
            ShortestRemainingDelay(),
            LongestRemainingDelay(),
            RandomVictim(),
            OldestArrival(),
            NewestArrival(),
        ],
        ids=lambda p: p.name,
    )
    def test_empty_selection_rejected(self, policy):
        with pytest.raises(ValueError):
            policy.select([], now=0.0, rng=RNG)


class TestRemainingDelayHelper:
    def test_remaining_delay(self):
        entry = _entry(0, arrival=1.0, release=20.0)
        assert entry.remaining_delay(now=5.0) == 15.0
        assert entry.remaining_delay(now=25.0) == 0.0
