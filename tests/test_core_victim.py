"""Unit tests for RCAD victim-selection policies."""

import numpy as np
import pytest

from repro.core.buffers import BufferedEntry
from repro.core.victim import (
    LongestRemainingDelay,
    NewestArrival,
    OldestArrival,
    RandomVictim,
    ShortestRemainingDelay,
)


def _entry(entry_id, arrival, release):
    return BufferedEntry(
        entry_id=entry_id, payload=f"p{entry_id}", arrival_time=arrival,
        release_time=release,
    )


ENTRIES = [
    _entry(0, arrival=1.0, release=20.0),
    _entry(1, arrival=3.0, release=5.0),   # shortest remaining
    _entry(2, arrival=2.0, release=40.0),  # longest remaining
    _entry(3, arrival=0.5, release=30.0),  # oldest arrival
    _entry(4, arrival=4.0, release=25.0),  # newest arrival
]

RNG = np.random.Generator(np.random.PCG64(0))


class TestDeterministicPolicies:
    def test_shortest_remaining(self):
        assert ShortestRemainingDelay().select(ENTRIES, now=4.0, rng=RNG).entry_id == 1

    def test_longest_remaining(self):
        assert LongestRemainingDelay().select(ENTRIES, now=4.0, rng=RNG).entry_id == 2

    def test_oldest_arrival(self):
        assert OldestArrival().select(ENTRIES, now=4.0, rng=RNG).entry_id == 3

    def test_newest_arrival(self):
        assert NewestArrival().select(ENTRIES, now=4.0, rng=RNG).entry_id == 4

    def test_single_entry(self):
        only = [ENTRIES[0]]
        for policy in (
            ShortestRemainingDelay(),
            LongestRemainingDelay(),
            OldestArrival(),
            NewestArrival(),
            RandomVictim(),
        ):
            assert policy.select(only, now=1.0, rng=RNG) is ENTRIES[0]

    def test_tie_broken_by_entry_id(self):
        tied = [_entry(7, 0.0, 10.0), _entry(3, 0.0, 10.0)]
        assert ShortestRemainingDelay().select(tied, now=0.0, rng=RNG).entry_id == 3
        assert OldestArrival().select(tied, now=0.0, rng=RNG).entry_id == 3

    def test_policies_do_not_mutate_entries(self):
        snapshot = [(e.entry_id, e.release_time) for e in ENTRIES]
        ShortestRemainingDelay().select(ENTRIES, now=4.0, rng=RNG)
        assert [(e.entry_id, e.release_time) for e in ENTRIES] == snapshot

    def test_names(self):
        assert ShortestRemainingDelay().name == "shortest-remaining"
        assert LongestRemainingDelay().name == "longest-remaining"
        assert RandomVictim().name == "random"
        assert OldestArrival().name == "oldest-arrival"
        assert NewestArrival().name == "newest-arrival"


class TestRandomVictim:
    def test_selects_among_entries(self):
        rng = np.random.Generator(np.random.PCG64(1))
        chosen = {RandomVictim().select(ENTRIES, 4.0, rng).entry_id for _ in range(200)}
        assert chosen == {0, 1, 2, 3, 4}

    def test_reproducible_with_seed(self):
        a = np.random.Generator(np.random.PCG64(5))
        b = np.random.Generator(np.random.PCG64(5))
        policy = RandomVictim()
        seq_a = [policy.select(ENTRIES, 4.0, a).entry_id for _ in range(20)]
        seq_b = [policy.select(ENTRIES, 4.0, b).entry_id for _ in range(20)]
        assert seq_a == seq_b


class TestEmptyBuffer:
    @pytest.mark.parametrize(
        "policy",
        [
            ShortestRemainingDelay(),
            LongestRemainingDelay(),
            RandomVictim(),
            OldestArrival(),
            NewestArrival(),
        ],
        ids=lambda p: p.name,
    )
    def test_empty_selection_rejected(self, policy):
        with pytest.raises(ValueError):
            policy.select([], now=0.0, rng=RNG)


class TestRemainingDelayHelper:
    def test_remaining_delay(self):
        entry = _entry(0, arrival=1.0, release=20.0)
        assert entry.remaining_delay(now=5.0) == 15.0
        assert entry.remaining_delay(now=25.0) == 0.0


class TestTieBreaking:
    """Determinism contract: ties resolve to the lowest entry_id.

    The streaming service's snapshot/restore path replays preemption
    decisions, so a tie must never depend on dict order or entry
    identity -- only on the admission-ordered entry_id.
    """

    TIED = [
        _entry(7, arrival=0.0, release=10.0),
        _entry(3, arrival=1.0, release=10.0),
        _entry(5, arrival=2.0, release=10.0),
    ]

    def test_shortest_remaining_tie_picks_lowest_id(self):
        assert ShortestRemainingDelay().select(self.TIED, 4.0, RNG).entry_id == 3

    def test_longest_remaining_tie_picks_lowest_id(self):
        assert LongestRemainingDelay().select(self.TIED, 4.0, RNG).entry_id == 3

    def test_arrival_policy_ties_resolve_by_admission_order(self):
        tied_arrivals = [
            _entry(9, arrival=5.0, release=10.0),
            _entry(2, arrival=5.0, release=30.0),
            _entry(6, arrival=5.0, release=20.0),
        ]
        # Oldest-arrival ties go to the earliest admission (lowest id);
        # newest-arrival ties to the latest (highest id, LIFO).
        assert OldestArrival().select(tied_arrivals, 6.0, RNG).entry_id == 2
        assert NewestArrival().select(tied_arrivals, 6.0, RNG).entry_id == 9

    def test_tie_break_independent_of_list_order(self):
        import itertools

        for perm in itertools.permutations(self.TIED):
            assert ShortestRemainingDelay().select(list(perm), 4.0, RNG).entry_id == 3

    def test_rcad_buffer_preemption_tie_is_replay_stable(self):
        """Equal release times in a full RcadBuffer always evict the
        earliest-admitted entry, before and after a restore cycle."""
        from repro.core.buffers import RcadBuffer

        def build(restored: bool) -> RcadBuffer:
            buf = RcadBuffer(capacity=3)
            items = [("a", 0.0, 50.0), ("b", 1.0, 50.0), ("c", 2.0, 50.0)]
            if restored:
                for payload, arrival, release in items:
                    buf.restore_entry(payload, arrival, release)
            else:
                for payload, arrival, release in items:
                    buf.offer(payload, arrival_time=arrival, release_time=release)
            return buf

        for restored in (False, True):
            buf = build(restored)
            result = buf.offer("d", arrival_time=3.0, release_time=60.0)
            assert result.victim is not None
            assert result.victim.payload == "a"
