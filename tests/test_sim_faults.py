"""Integration tests: the simulator under injected faults.

Every run here also exercises the invariant auditor implicitly -- the
simulator audits each finished run and raises on any accounting error,
so a green test is also a certificate of packet conservation.
"""

import dataclasses

import pytest

from repro.faults import (
    ArqSpec,
    BurstyLossSpec,
    CrashWindow,
    DuplicationSpec,
    FaultPlan,
    JitterSpec,
)
from repro.sim.config import SimulationConfig
from repro.sim.simulator import SensorNetworkSimulator


def _config(n_packets=50, seed=11, **overrides):
    config = SimulationConfig.paper_baseline(
        interarrival=4.0, case="rcad", n_packets=n_packets, seed=seed
    )
    return dataclasses.replace(config, **overrides) if overrides else config


def _created(config):
    return sum(flow.n_packets for flow in config.flows)


def _conserved(config, result):
    return (
        result.delivered_count()
        + result.drop_count()
        + result.lost_in_transit
        + result.stranded_in_buffer
        == _created(config)
    )


def _ge_loss(intensity=1.0):
    return BurstyLossSpec(
        p_good_to_bad=0.05 * intensity, p_bad_to_good=0.25, loss_bad=0.6 * intensity
    )


def _trunk_parent(config, flow_index=0):
    return config.tree.parent[config.flows[flow_index].source]


class TestNoopEquivalence:
    """A no-op plan must be *bit-identical* to no plan at all."""

    def test_noop_plan_matches_unfaulted_run(self):
        baseline = SensorNetworkSimulator(_config()).run()
        noop = FaultPlan(
            bursty_loss=BurstyLossSpec(0.0, 0.5, loss_bad=0.9),
            jitter=JitterSpec(0.0),
            duplication=DuplicationSpec(0.0),
        )
        assert noop.is_noop
        faulted = SensorNetworkSimulator(_config().with_faults(noop)).run()
        assert [o.arrival_time for o in faulted.observations] == [
            o.arrival_time for o in baseline.observations
        ]
        assert [r.delivered_at for r in faulted.records] == [
            r.delivered_at for r in baseline.records
        ]
        assert faulted.end_time == baseline.end_time
        assert faulted.total_retransmissions() == 0
        assert faulted.lost_in_transit == 0


class TestBurstyLoss:
    def test_ge_loss_conserves_packets(self):
        config = _config().with_faults(FaultPlan(bursty_loss=_ge_loss()))
        result = SensorNetworkSimulator(config).run()
        assert result.lost_in_transit > 0
        assert _conserved(config, result)

    def test_per_node_losses_partition_the_total(self):
        config = _config().with_faults(FaultPlan(bursty_loss=_ge_loss()))
        result = SensorNetworkSimulator(config).run()
        by_node = result.loss_by_node()
        assert sum(by_node.values()) == result.lost_in_transit
        assert all(count > 0 for count in by_node.values())

    def test_reproducible_given_seed(self):
        plan = FaultPlan(bursty_loss=_ge_loss(), jitter=JitterSpec(0.4))
        a = SensorNetworkSimulator(_config().with_faults(plan)).run()
        b = SensorNetworkSimulator(_config().with_faults(plan)).run()
        assert [o.arrival_time for o in a.observations] == [
            o.arrival_time for o in b.observations
        ]
        assert a.lost_in_transit == b.lost_in_transit


class TestJitter:
    def test_jitter_perturbs_arrivals_without_losing_packets(self):
        baseline = SensorNetworkSimulator(_config()).run()
        config = _config().with_faults(FaultPlan(jitter=JitterSpec(0.5)))
        result = SensorNetworkSimulator(config).run()
        assert result.delivered_count() == baseline.delivered_count()
        assert result.lost_in_transit == 0
        assert [o.arrival_time for o in result.observations] != [
            o.arrival_time for o in baseline.observations
        ]


class TestDuplication:
    def test_duplicates_suppressed_and_delivery_unaffected(self):
        baseline = SensorNetworkSimulator(_config()).run()
        config = _config().with_faults(
            FaultPlan(duplication=DuplicationSpec(probability=0.2))
        )
        result = SensorNetworkSimulator(config).run()
        assert result.duplicates_suppressed > 0
        # Every unique packet still arrives exactly once.
        assert result.delivered_count() == baseline.delivered_count()


class TestArq:
    def test_arq_on_clean_link_never_retransmits(self):
        config = _config().with_faults(FaultPlan(arq=ArqSpec(timeout=4.0)))
        result = SensorNetworkSimulator(config).run()
        assert result.total_retransmissions() == 0
        assert result.delivered_count() == _created(config)

    def test_arq_recovers_bursty_loss(self):
        lossy = _config().with_faults(FaultPlan(bursty_loss=_ge_loss()))
        repaired = _config().with_faults(
            FaultPlan(bursty_loss=_ge_loss(), arq=ArqSpec(timeout=4.0, max_retries=4))
        )
        without = SensorNetworkSimulator(lossy).run()
        with_arq = SensorNetworkSimulator(repaired).run()
        assert with_arq.total_retransmissions() > 0
        assert with_arq.delivered_count() > without.delivered_count()
        assert with_arq.lost_in_transit < without.lost_in_transit
        assert _conserved(repaired, with_arq)

    def test_retransmission_log_is_adversary_grade(self):
        """Each entry is a (time, sender, receiver) emission in-range."""
        config = _config().with_faults(
            FaultPlan(bursty_loss=_ge_loss(), arq=ArqSpec(timeout=4.0, max_retries=4))
        )
        result = SensorNetworkSimulator(config).run()
        nodes = set(config.deployment.node_ids)
        assert result.retransmissions
        for time, sender, receiver in result.retransmissions:
            assert 0.0 <= time <= result.end_time
            assert sender in nodes and receiver in nodes
        per_node = sum(s.retransmissions for s in result.node_stats.values())
        assert per_node == result.total_retransmissions()

    def test_exhausted_retries_count_as_loss(self):
        # A brutal channel with a single retry: some hops must abandon.
        plan = FaultPlan(
            bursty_loss=BurstyLossSpec(0.3, 0.1, loss_bad=0.95),
            arq=ArqSpec(timeout=4.0, max_retries=1),
        )
        config = _config().with_faults(plan)
        result = SensorNetworkSimulator(config).run()
        assert result.arq_failed > 0
        assert result.arq_failed <= result.lost_in_transit
        assert _conserved(config, result)


class TestCrashes:
    def test_crash_with_recovery_strands_nothing(self):
        config = _config()
        plan = FaultPlan(
            crashes=(CrashWindow(node=_trunk_parent(config), start=60.0, end=130.0),)
        )
        config = config.with_faults(plan)
        result = SensorNetworkSimulator(config).run()
        assert result.stranded_in_buffer == 0
        assert _conserved(config, result)

    def test_permanent_crash_strands_frozen_buffer(self):
        config = _config()
        plan = FaultPlan(
            crashes=(CrashWindow(node=_trunk_parent(config), start=60.0),)
        )
        config = config.with_faults(plan)
        result = SensorNetworkSimulator(config).run()
        assert result.stranded_in_buffer > 0
        assert _conserved(config, result)

    def test_failover_reroutes_around_crashed_parent(self):
        """Most traffic survives a mid-run trunk crash via backup parents."""
        config = _config(record_packet_traces=True)
        plan = FaultPlan(
            crashes=(CrashWindow(node=_trunk_parent(config), start=60.0, end=130.0),)
        )
        config = config.with_faults(plan)
        result = SensorNetworkSimulator(config).run()
        kinds = {
            event.kind
            for trace in result.packet_traces.values()
            for event in trace.events
        }
        assert "failover" in kinds
        assert result.delivered_count() > 0.9 * _created(config)

    def test_blackholed_packets_are_counted_losses(self):
        """Copies sent to a crashed hop with no backup vanish as losses."""
        config = _config()
        plan = FaultPlan(
            crashes=(CrashWindow(node=_trunk_parent(config), start=60.0, end=130.0),)
        )
        config = config.with_faults(plan)
        result = SensorNetworkSimulator(config).run()
        assert result.crash_blackholed <= result.lost_in_transit
        assert _conserved(config, result)


class TestCombinedChaos:
    def test_all_families_at_once_conserve(self):
        config = _config()
        plan = FaultPlan(
            bursty_loss=_ge_loss(0.5),
            jitter=JitterSpec(0.5),
            duplication=DuplicationSpec(0.05),
            crashes=(CrashWindow(node=_trunk_parent(config), start=60.0, end=130.0),),
            arq=ArqSpec(timeout=4.0, max_retries=4),
        )
        config = config.with_faults(plan)
        result = SensorNetworkSimulator(config).run()
        assert _conserved(config, result)
        assert result.delivered_count() > 0


class TestFaultConfigValidation:
    def test_sink_cannot_crash(self):
        config = _config()
        plan = FaultPlan(crashes=(CrashWindow(node=config.tree.sink, start=1.0),))
        with pytest.raises(ValueError):
            config.with_faults(plan)

    def test_crash_node_must_be_deployed(self):
        plan = FaultPlan(crashes=(CrashWindow(node=10_000, start=1.0),))
        with pytest.raises(ValueError):
            _config().with_faults(plan)

    def test_arq_timeout_must_exceed_round_trip(self):
        plan = FaultPlan(arq=ArqSpec(timeout=1.5))  # 2 * tau == 2.0
        with pytest.raises(ValueError):
            _config().with_faults(plan)
