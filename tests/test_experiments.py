"""Tests for the experiment drivers (small-scale shape checks).

Full-size regenerations (1000 packets, the complete 1/lambda sweep)
live in benchmarks/; here every driver runs at toy scale to verify it
produces well-formed results with the right qualitative shape.
"""

import pytest

from repro.experiments.ablations import (
    delay_allocation_ablation,
    drop_vs_preempt_ablation,
    victim_policy_ablation,
)
from repro.experiments.common import (
    PAPER_INTERARRIVALS,
    build_adversary,
    paper_flow_knowledge,
    run_paper_case,
    score_flow,
)
from repro.experiments.fig1 import topology_summary
from repro.experiments.fig2 import CASE_LABELS, figure2
from repro.experiments.fig3 import figure3
from repro.experiments.queueing_validation import (
    erlang_loss_validation,
    mm_infinity_validation,
    tree_occupancy_validation,
)
from repro.experiments.theory import (
    delay_distribution_comparison,
    validate_bits_through_queues,
    validate_epi_bound,
)

# Small but not tiny: below ~100 packets the buffer-fill transient
# dominates and the steady-state shapes have not emerged yet.
SMALL = dict(interarrivals=(2.0, 20.0), n_packets=150, seed=3)


class TestCommon:
    def test_paper_constants(self):
        assert PAPER_INTERARRIVALS[0] == 2 and PAPER_INTERARRIVALS[-1] == 20

    def test_knowledge_per_case(self):
        assert paper_flow_knowledge("no-delay").mean_delay_per_hop == 0.0
        assert paper_flow_knowledge("rcad").buffer_capacity == 10
        assert paper_flow_knowledge("unlimited").buffer_capacity is None

    def test_build_adversary_kinds(self):
        from repro.core.adversary import (
            AdaptiveAdversary,
            BaselineAdversary,
            NaiveAdversary,
        )

        assert isinstance(build_adversary("naive", "rcad"), NaiveAdversary)
        assert isinstance(build_adversary("baseline", "rcad"), BaselineAdversary)
        assert isinstance(build_adversary("adaptive", "rcad"), AdaptiveAdversary)
        # Baseline against no-delay degenerates to naive.
        assert isinstance(build_adversary("baseline", "no-delay"), NaiveAdversary)

    def test_adaptive_requires_rcad(self):
        with pytest.raises(ValueError):
            build_adversary("adaptive", "unlimited")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            build_adversary("psychic", "rcad")  # type: ignore[arg-type]

    def test_score_flow_unknown_flow_rejected(self):
        result = run_paper_case(10.0, "no-delay", n_packets=5, seed=0)
        with pytest.raises(ValueError):
            score_flow(result, build_adversary("baseline", "no-delay"), flow_id=99)


class TestFig1:
    def test_hop_counts_match_paper(self):
        summary = topology_summary()
        assert all(flow.matches_paper for flow in summary.flows)
        assert {f.hop_count for f in summary.flows} == {15, 22, 9, 11}

    def test_trunk_flow_counts_monotone(self):
        """Traffic accumulates toward the sink: flow counts don't drop."""
        summary = topology_summary()
        counts = [count for _, count in summary.trunk_flow_counts]
        assert counts == sorted(counts)
        assert counts[-1] == 4

    def test_render_mentions_all_flows(self):
        text = topology_summary().render()
        for label in ("S1", "S2", "S3", "S4"):
            assert label in text


class TestFig2:
    def test_tables_have_three_cases(self):
        mse, latency = figure2(**SMALL)
        for table in (mse, latency):
            assert [s.label for s in table.series] == list(CASE_LABELS.values())
            assert list(table.x_values) == [2.0, 20.0]

    def test_mse_shape(self):
        mse, _ = figure2(**SMALL)
        assert mse.get("NoDelay").value_at(2.0) == pytest.approx(0.0, abs=1e-9)
        rcad_fast = mse.get("Delay&LimitedBuffers").value_at(2.0)
        unlimited_fast = mse.get("Delay&UnlimitedBuffers").value_at(2.0)
        assert rcad_fast > 3 * unlimited_fast

    def test_latency_shape(self):
        _, latency = figure2(**SMALL)
        assert latency.get("NoDelay").value_at(2.0) == pytest.approx(15.0)
        no_delay = latency.get("NoDelay").value_at(2.0)
        rcad = latency.get("Delay&LimitedBuffers").value_at(2.0)
        unlimited = latency.get("Delay&UnlimitedBuffers").value_at(2.0)
        assert no_delay < rcad < unlimited


class TestFig3:
    def test_adaptive_no_worse_and_better_at_high_load(self):
        table = figure3(**SMALL)
        baseline = table.get("BaselineAdversary")
        adaptive = table.get("AdaptiveAdversary")
        for x in table.x_values:
            assert adaptive.value_at(x) <= baseline.value_at(x) * 1.05
        assert adaptive.value_at(2.0) < baseline.value_at(2.0)


class TestTheoryValidation:
    def test_bits_through_queues_bound_respected(self):
        table = validate_bits_through_queues(
            packet_indices=(1, 5, 20), n_realizations=1500, seed=1
        )
        empirical = table.get("empirical I(Xj;Zj)")
        bound = table.get("ln(1 + j*mu/lambda)")
        for x in table.x_values:
            assert empirical.value_at(x) <= bound.value_at(x) + 0.05

    def test_epi_floor_respected(self):
        table = validate_epi_bound(delay_means=(5.0, 30.0), n_samples=3000, seed=2)
        empirical = table.get("empirical I(X;Z)")
        floor = table.get("EPI lower bound")
        for x in table.x_values:
            assert empirical.value_at(x) >= floor.value_at(x) - 0.08

    def test_epi_leakage_decreases_with_delay(self):
        table = validate_epi_bound(delay_means=(5.0, 60.0), n_samples=3000, seed=3)
        empirical = table.get("empirical I(X;Z)")
        assert empirical.value_at(60.0) < empirical.value_at(5.0)

    def test_exponential_leaks_least(self):
        leakage = delay_distribution_comparison(n_samples=2500, seed=4)
        assert leakage["exponential"] <= leakage["uniform"] + 0.05
        assert leakage["constant"] > 2 * leakage["exponential"]


class TestQueueingValidation:
    def test_mm_infinity(self):
        report = mm_infinity_validation(horizon=15_000.0, seed=5)
        assert report["simulated_mean"] == pytest.approx(
            report["analytic_mean"], rel=0.1
        )
        assert report["tv_distance"] < 0.1

    def test_erlang_loss(self):
        table = erlang_loss_validation(
            offered_loads=(5.0, 15.0), horizon=15_000.0, seed=6
        )
        analytic = table.get("Erlang B (analytic)")
        simulated = table.get("M/M/k/k simulation")
        for x in table.x_values:
            assert simulated.value_at(x) == pytest.approx(
                analytic.value_at(x), abs=0.04
            )

    def test_tree_occupancy(self):
        table = tree_occupancy_validation(
            interarrival=10.0, n_packets=1200, seed=7
        )
        predicted = table.get("QueueTreeModel rho_i")
        measured = table.get("simulated occupancy")
        # Compare the path-summed occupancy (per-node noise is larger).
        total_predicted = sum(predicted.y_values)
        total_measured = sum(measured.y_values)
        assert total_measured == pytest.approx(total_predicted, rel=0.2)


class TestAblations:
    def test_victim_policies_all_reported(self):
        rows = victim_policy_ablation(n_packets=80, seed=8)
        assert {row.policy for row in rows} == {
            "shortest-remaining", "longest-remaining", "random",
            "oldest-arrival", "newest-arrival",
        }

    def test_shortest_remaining_preserves_delay_shape_best(self):
        rows = victim_policy_ablation(n_packets=120, seed=9)
        by_policy = {row.policy: row for row in rows}
        shortest = by_policy["shortest-remaining"].delay_shape_distance
        longest = by_policy["longest-remaining"].delay_shape_distance
        assert shortest < longest

    def test_delay_allocation_rows(self):
        rows = delay_allocation_ablation(n_packets=80, seed=10)
        names = {row.planner for row in rows}
        assert names == {
            "uniform", "sink-weighted", "erlang-target", "variance-optimal",
        }
        for row in rows:
            assert row.max_node_mean_occupancy > 0

    def test_sink_weighted_relieves_trunk(self):
        rows = {r.planner: r for r in delay_allocation_ablation(n_packets=80, seed=11)}
        assert (
            rows["erlang-target"].max_node_mean_occupancy
            < rows["uniform"].max_node_mean_occupancy
        )

    def test_drop_vs_preempt(self):
        rows = drop_vs_preempt_ablation(
            interarrivals=(2.0, 16.0), n_packets=80, seed=12
        )
        fast = rows[0]
        assert fast.rcad_delivered == 80
        assert fast.droptail_delivered < 80
        assert fast.droptail_drop_fraction > 0.2
        slow = rows[1]
        assert slow.droptail_drop_fraction < fast.droptail_drop_fraction


class TestChaosSweep:
    def test_plan_intensity_validated(self):
        from repro.experiments.chaos import chaos_plan
        from repro.sim.config import SimulationConfig

        config = SimulationConfig.paper_baseline(interarrival=4.0, case="rcad")
        with pytest.raises(ValueError):
            chaos_plan(1.5, config)

    def test_zero_intensity_means_no_plan(self):
        from repro.experiments.chaos import chaos_plan
        from repro.sim.config import SimulationConfig

        config = SimulationConfig.paper_baseline(interarrival=4.0, case="rcad")
        assert chaos_plan(0.0, config) is None

    def test_crash_window_appears_above_threshold(self):
        from repro.experiments.chaos import CRASH_INTENSITY_THRESHOLD, chaos_plan
        from repro.sim.config import SimulationConfig

        config = SimulationConfig.paper_baseline(interarrival=4.0, case="rcad")
        below = chaos_plan(CRASH_INTENSITY_THRESHOLD / 2, config)
        above = chaos_plan(CRASH_INTENSITY_THRESHOLD, config)
        assert not below.crashes
        assert above.crashes
        assert above.crashes[0].node == config.tree.parent[config.flows[0].source]

    def test_arq_flag_toggles_arq_spec(self):
        from repro.experiments.chaos import chaos_plan
        from repro.sim.config import SimulationConfig

        config = SimulationConfig.paper_baseline(interarrival=4.0, case="rcad")
        assert chaos_plan(0.5, config, arq=False).arq is None
        assert chaos_plan(0.5, config, arq=True).arq is not None

    def test_small_sweep_shape_and_degradation(self):
        from repro.experiments.chaos import chaos_sweep, render_chaos_rows

        rows = chaos_sweep(
            intensities=(0.0, 1.0),
            disciplines=("rcad",),
            arq_modes=(False,),
            n_packets=60,
            seed=3,
        )
        assert [row.intensity for row in rows] == [0.0, 1.0]
        clean, faulty = rows
        assert clean.delivered_fraction == pytest.approx(1.0)
        assert clean.retransmissions == 0 and clean.lost_in_transit == 0
        assert faulty.delivered_fraction < clean.delivered_fraction
        assert faulty.lost_in_transit > 0
        text = render_chaos_rows(rows)
        assert "rcad" in text and "eps" in text

    def test_arq_restores_delivery_at_a_retx_cost(self):
        from repro.experiments.chaos import chaos_sweep

        rows = chaos_sweep(
            intensities=(1.0,),
            disciplines=("rcad",),
            arq_modes=(False, True),
            n_packets=60,
            seed=3,
        )
        bare, arq = rows
        assert arq.delivered_fraction > bare.delivered_fraction
        assert arq.retransmissions > 0
