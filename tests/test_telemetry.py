"""Unit tests for the telemetry package: registry, series, manifests."""

import json
import pickle

import pytest

from repro.telemetry import (
    DEFAULT_LATENCY_EDGES,
    CaptureSink,
    Histogram,
    MetricsRegistry,
    RunTelemetry,
    SchemaError,
    TelemetryAggregate,
    TimeSeries,
    build_manifest,
    latest_manifest,
    load_manifest,
    load_manifest_schema,
    load_series,
    validate,
    write_run_artifacts,
)
from repro.telemetry.timeseries import resample_step, time_average, windowed_rate


class TestRegistry:
    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(3)
        assert reg.snapshot()["counters"]["a"] == 4

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1.0)
        reg.gauge("g").set(7.5)
        assert reg.snapshot()["gauges"]["g"] == 7.5
        assert reg.gauge("g").set_count == 2

    def test_histogram_bucket_edges(self):
        h = Histogram(edges=(1.0, 2.0, 5.0))
        # bucket semantics: (-inf,1], (1,2], (2,5], (5,inf)
        for v in (0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 100.0):
            h.observe(v)
        assert h.counts == [2, 2, 2, 1]
        assert h.count == 7
        assert h.min == 0.5
        assert h.max == 100.0

    def test_histogram_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram(edges=())
        with pytest.raises(ValueError):
            Histogram(edges=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(edges=(2.0, 1.0))

    def test_histogram_merge_requires_identical_edges(self):
        a = Histogram(edges=(1.0, 2.0))
        b = Histogram(edges=(1.0, 3.0))
        b.observe(1.5)
        with pytest.raises(ValueError, match="different edges"):
            a.merge_dict(b.to_dict())

    def test_histogram_merge_adds_buckets_and_extremes(self):
        a = Histogram(edges=(1.0, 2.0))
        a.observe(0.5)
        b = Histogram(edges=(1.0, 2.0))
        b.observe(5.0)
        a.merge_dict(b.to_dict())
        assert a.counts == [1, 0, 1]
        assert a.count == 2
        assert a.min == 0.5 and a.max == 5.0

    def test_empty_histogram_merges_harmlessly(self):
        a = Histogram(edges=(1.0,))
        a.observe(0.5)
        a.merge_dict(Histogram(edges=(1.0,)).to_dict())
        assert a.count == 1 and a.min == 0.5

    def test_histogram_redefinition_with_other_edges_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", edges=(1.0, 2.0))
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("h", edges=(1.0, 3.0))

    def test_default_latency_edges_are_increasing(self):
        assert list(DEFAULT_LATENCY_EDGES) == sorted(DEFAULT_LATENCY_EDGES)
        assert len(set(DEFAULT_LATENCY_EDGES)) == len(DEFAULT_LATENCY_EDGES)

    def test_snapshot_round_trips_through_merge(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(3.0)
        reg.histogram("h", edges=(1.0, 2.0)).observe(1.5)
        other = MetricsRegistry()
        other.merge_snapshot(reg.snapshot())
        assert other.snapshot() == reg.snapshot()

    def test_snapshot_is_json_serializable_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z").inc()
        reg.counter("a").inc()
        snap = reg.snapshot()
        json.dumps(snap)
        assert list(snap["counters"]) == ["a", "z"]

    def test_registry_pickles(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        reg.gauge("g").set(2.0)
        reg.histogram("h", edges=(1.0,)).observe(0.5)
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.snapshot() == reg.snapshot()
        assert clone.gauge("g").set_count == reg.gauge("g").set_count


class TestTimeSeries:
    def test_time_average_step_semantics(self):
        # value 0 on [0,1), 2 on [1,3), 4 from 3 on.
        times, values = [1.0, 3.0], [2.0, 4.0]
        assert time_average(times, values, 0.0, 4.0) == pytest.approx(
            (0 * 1 + 2 * 2 + 4 * 1) / 4.0
        )

    def test_time_average_window_inside_steps(self):
        times, values = [1.0, 3.0], [2.0, 4.0]
        assert time_average(times, values, 1.5, 2.5) == pytest.approx(2.0)
        assert time_average(times, values, 10.0, 20.0) == pytest.approx(4.0)

    def test_time_average_initial_value(self):
        assert time_average([], [], 0.0, 5.0, initial=3.0) == pytest.approx(3.0)

    def test_time_average_degenerate_window(self):
        assert time_average([1.0], [2.0], 5.0, 5.0, initial=9.0) == 9.0
        with pytest.raises(ValueError):
            time_average([1.0], [2.0], 5.0, 4.0)

    def test_series_time_average_matches_function(self):
        s = TimeSeries("x")
        s.append(1.0, 2.0)
        s.append(3.0, 4.0)
        assert s.time_average(0.0, 4.0) == pytest.approx(
            time_average(s.times, s.values, 0.0, 4.0)
        )

    def test_series_dict_round_trip(self):
        s = TimeSeries("x")
        s.append(1.0, 2.0)
        clone = TimeSeries.from_dict(s.to_dict())
        assert clone.name == "x"
        assert clone.times == s.times and clone.values == s.values

    def test_windowed_rate_counts_window_events(self):
        # 10 events at t=1..10; window 5 probed at t=10 sees 5 events.
        events = [float(t) for t in range(1, 11)]
        series = windowed_rate(events, window=5.0, t_end=10.0, n_points=2)
        assert series.times == [5.0, 10.0]
        assert series.values[-1] == pytest.approx(1.0)  # 5 events / 5 units

    def test_windowed_rate_validates(self):
        with pytest.raises(ValueError):
            windowed_rate([], window=0.0, t_end=1.0)
        with pytest.raises(ValueError):
            windowed_rate([], window=1.0, t_end=1.0, n_points=0)

    def test_resample_step(self):
        assert resample_step([1.0, 3.0], [2.0, 4.0], [0.5, 1.0, 2.0, 3.5]) == [
            0.0, 2.0, 2.0, 4.0,
        ]


class TestAggregate:
    def test_publication_order_preserved(self):
        agg = TelemetryAggregate()
        for key in ("b", "a", "c"):
            agg.add_run(key, RunTelemetry())
        assert [k for k, _ in agg.runs] == ["b", "a", "c"]

    def test_capture_diverts_and_replay_restores(self):
        agg = TelemetryAggregate()
        with agg.capture() as sink:
            agg.add_run("x", RunTelemetry())
        assert agg.n_runs == 0
        assert [k for k, _ in sink.runs] == ["x"]
        agg.replay(sink.runs)
        assert [k for k, _ in agg.runs] == ["x"]

    def test_nested_capture_uses_innermost(self):
        agg = TelemetryAggregate()
        with agg.capture() as outer:
            with agg.capture() as inner:
                agg.add_run("deep", RunTelemetry())
            assert not outer.runs and len(inner.runs) == 1

    def test_merged_registry_sums_counters(self):
        agg = TelemetryAggregate()
        for n in (1, 2):
            run = RunTelemetry()
            run.registry.counter("sim/drops").inc(n)
            agg.add_run(f"run{n}", run)
        assert agg.snapshot()["counters"]["sim/drops"] == 3

    def test_capture_sink_is_plain_list(self):
        sink = CaptureSink()
        sink.add("k", RunTelemetry())
        assert len(sink.runs) == 1


def _manifest(aggregate=None, **kwargs):
    if aggregate is None:
        aggregate = TelemetryAggregate()
        run = RunTelemetry()
        run.registry.counter("sim/drops").inc(2)
        run.series.series("occupancy/node-1").append(0.0, 1.0)
        aggregate.add_run("cafe" * 16, run)
    defaults = dict(
        command="run",
        argv=["run", "--telemetry"],
        aggregate=aggregate,
        wall_time_seconds=1.5,
        seed=0,
        jobs=2,
        simulations=1,
        sim_seconds=0.4,
        started_at=1_700_000_000.0,
    )
    defaults.update(kwargs)
    return build_manifest(**defaults), aggregate


class TestManifest:
    def test_build_manifest_validates_against_schema(self):
        manifest, _ = _manifest()
        validate(manifest)

    def test_config_fingerprint_is_order_independent(self):
        a = TelemetryAggregate()
        b = TelemetryAggregate()
        for key in ("k1", "k2"):
            a.add_run(key, RunTelemetry())
        for key in ("k2", "k1"):
            b.add_run(key, RunTelemetry())
        ma, _ = _manifest(aggregate=a)
        mb, _ = _manifest(aggregate=b)
        assert ma["config_fingerprint"] == mb["config_fingerprint"]

    def test_write_and_load_round_trip(self, tmp_path):
        manifest, aggregate = _manifest()
        manifest_path, series_path = write_run_artifacts(
            tmp_path, "run", manifest, aggregate
        )
        loaded = load_manifest(manifest_path)
        validate(loaded)
        assert loaded["series_file"] == series_path.name
        assert loaded["metrics"]["counters"]["sim/drops"] == 2
        series, metrics = load_series(series_path)
        run_key = loaded["runs"][0]
        assert series[(run_key, "occupancy/node-1")].values == [1.0]
        assert metrics[run_key]["counters"]["sim/drops"] == 2

    def test_load_series_skips_torn_lines(self, tmp_path):
        manifest, aggregate = _manifest()
        _, series_path = write_run_artifacts(tmp_path, "run", manifest, aggregate)
        with series_path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "series", "run": "x", "na')  # torn write
        series, _ = load_series(series_path)
        assert all(key != "x" for key, _ in series)

    def test_latest_manifest(self, tmp_path):
        assert latest_manifest(tmp_path / "missing") is None
        assert latest_manifest(tmp_path) is None
        (tmp_path / "20240101-000000-1-run.manifest.json").write_text("{}")
        (tmp_path / "20250101-000000-1-run.manifest.json").write_text("{}")
        found = latest_manifest(tmp_path)
        assert found is not None and found.name.startswith("20250101")


class TestSchemaValidator:
    def test_schema_loads(self):
        schema = load_manifest_schema()
        assert schema["type"] == "object"

    def test_missing_required_and_extra_property_both_reported(self):
        manifest, _ = _manifest()
        del manifest["command"]
        manifest["surprise"] = 1
        with pytest.raises(SchemaError) as excinfo:
            validate(manifest)
        messages = "; ".join(excinfo.value.errors)
        assert "command" in messages and "surprise" in messages

    def test_type_violations_detected(self):
        manifest, _ = _manifest()
        manifest["wall_time_seconds"] = "fast"
        manifest["runs"] = [1]
        with pytest.raises(SchemaError) as excinfo:
            validate(manifest)
        assert len(excinfo.value.errors) == 2

    def test_bool_is_not_an_integer(self):
        manifest, _ = _manifest()
        manifest["schema_version"] = True
        with pytest.raises(SchemaError):
            validate(manifest)

    def test_minimum_enforced(self):
        manifest, _ = _manifest()
        manifest["wall_time_seconds"] = -1.0
        with pytest.raises(SchemaError, match="minimum"):
            validate(manifest)

    def test_nullable_fields(self):
        manifest, _ = _manifest(seed=None, cache_stats=None)
        validate(manifest)
