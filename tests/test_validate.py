"""Tests for the installation self-check."""

from repro.validate import CHECKS, main, run_checks


class TestSelfCheck:
    def test_all_checks_pass(self):
        outcomes = run_checks(verbose=False)
        failed = {name for name, error in outcomes.items() if error is not None}
        assert not failed

    def test_check_registry_covers_subsystems(self):
        text = " ".join(CHECKS)
        for keyword in ("des", "crypto", "queueing", "topology", "RCAD"):
            assert keyword in text

    def test_main_exit_code_and_output(self, capsys):
        assert main() == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "FAIL" not in out
        assert f"{len(CHECKS)}/{len(CHECKS)} subsystems healthy" in out

    def test_failure_is_reported_not_raised(self, monkeypatch):
        import repro.validate as validate

        def broken():
            raise RuntimeError("injected fault")

        monkeypatch.setitem(validate.CHECKS, "injected", broken)
        outcomes = run_checks(verbose=False)
        assert isinstance(outcomes["injected"], RuntimeError)
        assert main() == 1
