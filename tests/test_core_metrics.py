"""Unit tests for privacy/performance metrics."""

import math

import pytest

from repro.core.metrics import (
    FlowMetrics,
    LatencyStats,
    PacketRecord,
    summarize_flow,
)


def _record(created, delivered, flow_id=1, packet_id=0, preemptions=0):
    return PacketRecord(
        flow_id=flow_id, packet_id=packet_id, created_at=created,
        delivered_at=delivered, hop_count=15,
        preemptions_experienced=preemptions,
    )


class TestPacketRecord:
    def test_latency(self):
        assert _record(10.0, 25.0).latency == 15.0

    def test_delivery_before_creation_rejected(self):
        with pytest.raises(ValueError):
            _record(10.0, 9.0)

    def test_zero_latency_allowed(self):
        assert _record(10.0, 10.0).latency == 0.0


class TestLatencyStats:
    def test_summary_values(self):
        stats = LatencyStats.from_samples([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.mean == 3.0
        assert stats.median == 3.0
        assert stats.minimum == 1.0
        assert stats.maximum == 5.0
        assert stats.p95 == pytest.approx(4.8)

    def test_single_sample(self):
        stats = LatencyStats.from_samples([7.0])
        assert stats.mean == stats.median == stats.p95 == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats.from_samples([])


class TestSummarizeFlow:
    def test_paper_mse_definition(self):
        """MSE = sum (x_hat - x)^2 / m (Section 2.1)."""
        records = [_record(0.0, 10.0, packet_id=i) for i in range(2)]
        metrics = summarize_flow(records, estimates=[3.0, -1.0])
        assert metrics.mse == pytest.approx((9.0 + 1.0) / 2)
        assert metrics.rmse == pytest.approx(math.sqrt(5.0))

    def test_mean_error_signed(self):
        records = [_record(0.0, 10.0, packet_id=i) for i in range(2)]
        metrics = summarize_flow(records, estimates=[2.0, -4.0])
        assert metrics.mean_error == pytest.approx(-1.0)

    def test_latency_stats_included(self):
        records = [
            _record(0.0, 10.0, packet_id=0),
            _record(5.0, 25.0, packet_id=1),
        ]
        metrics = summarize_flow(records, estimates=[0.0, 5.0])
        assert metrics.latency.mean == pytest.approx(15.0)
        assert metrics.mse == 0.0

    def test_preemption_fraction(self):
        records = [
            _record(0.0, 10.0, packet_id=0, preemptions=0),
            _record(0.0, 10.0, packet_id=1, preemptions=2),
            _record(0.0, 10.0, packet_id=2, preemptions=1),
            _record(0.0, 10.0, packet_id=3, preemptions=0),
        ]
        metrics = summarize_flow(records, estimates=[0.0] * 4)
        assert metrics.preemption_fraction == 0.5

    def test_n_packets_and_flow_id(self):
        records = [_record(0.0, 1.0, flow_id=3, packet_id=i) for i in range(7)]
        metrics = summarize_flow(records, estimates=[0.0] * 7)
        assert metrics.n_packets == 7
        assert metrics.flow_id == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_flow([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            summarize_flow([_record(0.0, 1.0)], [1.0, 2.0])

    def test_mixed_flows_rejected(self):
        records = [
            _record(0.0, 1.0, flow_id=1),
            _record(0.0, 1.0, flow_id=2),
        ]
        with pytest.raises(ValueError):
            summarize_flow(records, [0.0, 0.0])

    def test_flow_metrics_is_value_object(self):
        records = [_record(0.0, 1.0)]
        a = summarize_flow(records, [0.0])
        b = summarize_flow(records, [0.0])
        assert a == b
        assert isinstance(a, FlowMetrics)
