"""Unit tests for the Equation (2) and Equation (4) bounds."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.infotheory.bounds import (
    bits_through_queues_bound,
    cumulative_bits_through_queues_bound,
    entropy_power,
    epi_lower_bound,
)
from repro.infotheory.entropy import gaussian_entropy, gaussian_mutual_information


class TestEntropyPower:
    def test_gaussian_entropy_power_is_variance(self):
        for variance in (0.5, 1.0, 9.0):
            assert entropy_power(gaussian_entropy(variance)) == pytest.approx(variance)

    def test_monotone_in_entropy(self):
        assert entropy_power(2.0) > entropy_power(1.0)


class TestEpiLowerBound:
    def test_gaussian_case_is_tight(self):
        """For Gaussian X and Y the EPI holds with equality."""
        for sx2, sy2 in ((1.0, 1.0), (4.0, 1.0), (1.0, 9.0)):
            bound = epi_lower_bound(gaussian_entropy(sx2), gaussian_entropy(sy2))
            exact = gaussian_mutual_information(sx2, sy2)
            assert bound == pytest.approx(exact, rel=1e-9)

    def test_bound_nonnegative(self):
        # Very peaked X (negative entropy): bound clamps at 0.
        assert epi_lower_bound(-10.0, 2.0) >= 0.0

    def test_more_delay_entropy_lower_bound_shrinks(self):
        h_x = gaussian_entropy(1.0)
        assert epi_lower_bound(h_x, 3.0) < epi_lower_bound(h_x, 1.0)

    @given(
        st.floats(min_value=-3.0, max_value=5.0),
        st.floats(min_value=-3.0, max_value=5.0),
    )
    def test_nonnegative_property(self, h_x, h_y):
        assert epi_lower_bound(h_x, h_y) >= 0.0

    @given(
        st.floats(min_value=0.01, max_value=50.0),
        st.floats(min_value=0.01, max_value=50.0),
    )
    def test_gaussian_equality_property(self, sx2, sy2):
        bound = epi_lower_bound(gaussian_entropy(sx2), gaussian_entropy(sy2))
        assert bound == pytest.approx(gaussian_mutual_information(sx2, sy2), rel=1e-6)


class TestBitsThroughQueues:
    def test_known_value(self):
        # j=1, mu/lambda = 1 -> ln 2.
        assert bits_through_queues_bound(1, 1.0, 1.0) == pytest.approx(math.log(2.0))

    def test_paper_operating_point(self):
        """lambda = 0.5, 1/mu = 30: per-packet leak bound is small."""
        bound = bits_through_queues_bound(1, 0.5, 1.0 / 30.0)
        assert bound == pytest.approx(math.log(1.0 + (1.0 / 30.0) / 0.5))
        assert bound < 0.1  # < 0.1 nats for the first packet

    def test_grows_with_packet_index(self):
        bounds = [bits_through_queues_bound(j, 0.5, 0.1) for j in (1, 5, 20)]
        assert bounds == sorted(bounds)
        assert bounds[0] < bounds[-1]

    def test_smaller_mu_less_leakage(self):
        """The paper's design knob: tune mu small relative to lambda."""
        assert bits_through_queues_bound(3, 1.0, 0.01) < bits_through_queues_bound(
            3, 1.0, 1.0
        )

    def test_cumulative_is_sum(self):
        total = cumulative_bits_through_queues_bound(5, 0.5, 0.2)
        parts = sum(bits_through_queues_bound(j, 0.5, 0.2) for j in range(1, 6))
        assert total == pytest.approx(parts)

    def test_cumulative_zero_packets(self):
        assert cumulative_bits_through_queues_bound(0, 1.0, 1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bits_through_queues_bound(0, 1.0, 1.0)
        with pytest.raises(ValueError):
            bits_through_queues_bound(1, 0.0, 1.0)
        with pytest.raises(ValueError):
            bits_through_queues_bound(1, 1.0, -1.0)
        with pytest.raises(ValueError):
            cumulative_bits_through_queues_bound(-1, 1.0, 1.0)

    @given(
        st.integers(min_value=1, max_value=1000),
        st.floats(min_value=0.01, max_value=10.0),
        st.floats(min_value=0.001, max_value=10.0),
    )
    def test_positive_property(self, j, lam, mu):
        assert bits_through_queues_bound(j, lam, mu) > 0.0
