"""Run the doctest examples embedded in the library's docstrings.

The API docs promise runnable examples; this test keeps that promise
honest by executing every ``>>>`` block in the listed modules.
"""

import doctest

import pytest

import repro.core.buffers
import repro.core.delays
import repro.crypto.keys
import repro.crypto.mac
import repro.crypto.modes
import repro.crypto.speck
import repro.des.engine
import repro.des.rng
import repro.des.timers
import repro.faults.gilbert_elliott
import repro.queueing.erlang
import repro.queueing.mminf
import repro.queueing.mmkk
import repro.queueing.poisson
import repro.queueing.simq
import repro.queueing.tandem
import repro.sim.simulator

MODULES = [
    repro.des.engine,
    repro.des.rng,
    repro.des.timers,
    repro.faults.gilbert_elliott,
    repro.crypto.speck,
    repro.crypto.modes,
    repro.crypto.mac,
    repro.crypto.keys,
    repro.queueing.poisson,
    repro.queueing.erlang,
    repro.queueing.mminf,
    repro.queueing.mmkk,
    repro.queueing.tandem,
    repro.queueing.simq,
    repro.core.delays,
    repro.core.buffers,
    repro.sim.simulator,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctest examples"
    assert results.failed == 0
