"""Unit tests for the delay-budget optimizer."""

import pytest

from repro.core.optimizer import VarianceOptimalPlanner, optimize_path_delays
from repro.core.planner import UniformPlanner
from repro.net.routing import RoutingTree
from repro.queueing.erlang import erlang_b, offered_load_for_target_loss

# Line 4 -> 3 -> 2 -> 1 -> 0(sink), side branch 5 -> 2.
TREE = RoutingTree(parent={4: 3, 3: 2, 2: 1, 1: 0, 5: 2}, sink=0)


class TestOptimizePathDelays:
    def test_budget_spent_when_feasible(self):
        allocation = optimize_path_delays(
            path_rates=[0.1, 0.2, 0.4], latency_budget=30.0,
            buffer_capacity=10, target_loss=0.1,
        )
        assert allocation.latency_used == pytest.approx(30.0)

    def test_concentrates_on_low_rate_nodes(self):
        """The far-from-sink node (smallest lambda) fills first."""
        allocation = optimize_path_delays(
            path_rates=[0.1, 0.2, 0.4], latency_budget=30.0,
            buffer_capacity=10, target_loss=0.1,
        )
        assert allocation.means[0] >= allocation.means[1] >= allocation.means[2]

    def test_beats_uniform_split_on_variance(self):
        rates = [0.1, 0.2, 0.4, 0.8]
        budget = 40.0
        optimal = optimize_path_delays(rates, budget, 10, 0.1)
        uniform_variance = len(rates) * (budget / len(rates)) ** 2
        assert optimal.achieved_variance >= uniform_variance

    def test_respects_buffer_caps(self):
        rates = [0.5, 1.0, 2.0]
        allocation = optimize_path_delays(rates, 100.0, 10, 0.05)
        rho_max = offered_load_for_target_loss(10, 0.05)
        for rate, mean in zip(rates, allocation.means):
            assert rate * mean <= rho_max + 1e-9
            assert erlang_b(rate * mean, 10) <= 0.05 + 1e-9

    def test_caps_bind_when_budget_exceeds_capacity(self):
        rates = [1.0, 1.0]
        allocation = optimize_path_delays(rates, 1000.0, 10, 0.05)
        assert allocation.latency_used < 1000.0
        assert set(allocation.binding_nodes) == {0, 1}

    def test_single_node_gets_everything_up_to_cap(self):
        allocation = optimize_path_delays([0.01], 50.0, 10, 0.1)
        assert allocation.means == (50.0,)
        assert allocation.achieved_variance == pytest.approx(2500.0)

    def test_zero_rate_node_is_uncapped(self):
        allocation = optimize_path_delays([0.0, 5.0], 20.0, 10, 0.05)
        assert allocation.means[0] == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            optimize_path_delays([], 10.0, 10, 0.1)
        with pytest.raises(ValueError):
            optimize_path_delays([0.1], 0.0, 10, 0.1)
        with pytest.raises(ValueError):
            optimize_path_delays([-0.1], 10.0, 10, 0.1)

    def test_vertex_optimality_against_random_feasible_points(self, rng):
        """No random feasible allocation beats the greedy vertex."""
        rates = [0.2, 0.4, 0.8, 1.6]
        budget = 25.0
        optimal = optimize_path_delays(rates, budget, 10, 0.1)
        rho_max = offered_load_for_target_loss(10, 0.1)
        caps = [rho_max / r for r in rates]
        for _ in range(300):
            weights = rng.dirichlet([1.0] * len(rates))
            candidate = [min(w * budget, c) for w, c in zip(weights, caps)]
            # Candidate respects both constraint families by build.
            assert sum(m * m for m in candidate) <= (
                optimal.achieved_variance + 1e-9
            )


class TestVarianceOptimalPlanner:
    FLOWS = {4: 0.25, 5: 0.25}

    def _planner(self, budget=120.0):
        return VarianceOptimalPlanner(
            source=4, latency_budget=budget, buffer_capacity=10,
            target_loss=0.1, fallback_mean_delay=30.0,
        )

    def test_path_nodes_planned_others_fall_back(self):
        plan = self._planner().plan(TREE, self.FLOWS)
        # Node 4 (far, lambda=0.25) gets far more than node 1 (near,
        # lambda=0.5 aggregate).
        assert plan.distribution_for(4).mean > plan.distribution_for(1).mean
        assert plan.distribution_for(5).mean == pytest.approx(30.0)

    def test_total_path_delay_within_budget(self):
        budget = 120.0
        plan = self._planner(budget).plan(TREE, self.FLOWS)
        assert plan.mean_path_delay(TREE, 4) <= budget + 1e-6

    def test_variance_dominates_feasible_uniform(self):
        """The optimum beats the best uniform split that also respects
        every node's buffer cap (an unconstrained uniform split can
        post more variance only by overloading the trunk buffers)."""
        budget = 120.0
        plan = self._planner(budget).plan(TREE, self.FLOWS)
        path = TREE.path(4)[:-1]
        rho_max = offered_load_for_target_loss(10, 0.1)
        rates = {4: 0.25, 3: 0.25, 2: 0.5, 1: 0.5}
        feasible_uniform = min(
            budget / len(path), min(rho_max / rates[n] for n in path)
        )
        uniform = UniformPlanner(feasible_uniform).plan(TREE, self.FLOWS)
        optimal_variance = sum(plan.distribution_for(n).mean ** 2 for n in path)
        uniform_variance = sum(uniform.distribution_for(n).mean ** 2 for n in path)
        assert optimal_variance > uniform_variance

    def test_shared_trunk_capped_by_aggregate_load(self):
        plan = self._planner(budget=1000.0).plan(TREE, self.FLOWS)
        rho_max = offered_load_for_target_loss(10, 0.1)
        # Node 2 carries both flows (aggregate 0.5).
        assert plan.distribution_for(2).mean * 0.5 <= rho_max + 1e-6

    def test_unknown_source_rejected(self):
        planner = VarianceOptimalPlanner(
            source=99, latency_budget=10.0, buffer_capacity=10,
            target_loss=0.1, fallback_mean_delay=30.0,
        )
        with pytest.raises(ValueError):
            planner.plan(TREE, self.FLOWS)

    def test_validation(self):
        with pytest.raises(ValueError):
            VarianceOptimalPlanner(4, 10.0, 10, 0.1, fallback_mean_delay=0.0)
