"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig2_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.packets == 1000
        assert args.seed == 0

    def test_run_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--case", "bogus"])

    def test_fig3_path_aware_flag(self):
        args = build_parser().parse_args(["fig3", "--path-aware"])
        assert args.path_aware is True


class TestCommands:
    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "S1" in out and "15" in out

    def test_fig2_small(self, capsys):
        code = main(
            ["fig2", "--packets", "60", "--seed", "1", "--interarrivals", "4,20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 2(a)" in out and "Figure 2(b)" in out
        assert "NoDelay" in out and "Delay&LimitedBuffers" in out

    def test_fig3_small(self, capsys):
        code = main(
            ["fig3", "--packets", "60", "--seed", "1", "--interarrivals", "4,20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "BaselineAdversary" in out and "AdaptiveAdversary" in out

    def test_run_rcad(self, capsys):
        code = main(
            ["run", "--case", "rcad", "--packets", "60", "--interarrival", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "adversary MSE" in out
        assert "preemptions" in out

    def test_run_no_delay_zero_mse(self, capsys):
        main(["run", "--case", "no-delay", "--packets", "30"])
        out = capsys.readouterr().out
        assert "adversary MSE   : 0.0" in out

    def test_invalid_sweep_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig2", "--interarrivals", "2,apple"])
        with pytest.raises(SystemExit):
            main(["fig2", "--interarrivals", "-3"])

    def test_fig3_csv_and_json_export(self, tmp_path, capsys):
        csv_path = tmp_path / "fig3.csv"
        json_path = tmp_path / "fig3.json"
        code = main([
            "fig3", "--packets", "40", "--seed", "1",
            "--interarrivals", "4,20",
            "--csv", str(csv_path), "--json", str(json_path),
        ])
        assert code == 0
        csv_text = csv_path.read_text()
        assert csv_text.splitlines()[0].startswith("1/lambda,")
        assert len(csv_text.strip().splitlines()) == 3  # header + 2 rows
        from repro.analysis.records import ExperimentTable

        restored = ExperimentTable.from_json(json_path.read_text())
        assert [s.label for s in restored.series] == [
            "BaselineAdversary", "AdaptiveAdversary",
        ]

    def test_theory_fast(self, capsys):
        assert main(["theory", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "bits-through-queues" in out
        assert "EPI lower bound" in out
        assert "exponential" in out

    def test_queueing_fast(self, capsys):
        assert main(["queueing", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "M/M/inf validation" in out
        assert "Erlang loss validation" in out
        assert "QueueTreeModel" in out

    def test_fig2_export_writes_both_panels(self, tmp_path, capsys):
        base = tmp_path / "fig2.csv"
        main([
            "fig2", "--packets", "40", "--seed", "1",
            "--interarrivals", "4", "--csv", str(base),
        ])
        assert base.exists()
        assert (tmp_path / "fig2.csv.latency.csv").exists()


class TestJobsOption:
    def test_negative_jobs_rejected_with_existing_message(self, capsys):
        with pytest.raises(
            SystemExit, match=r"--jobs must be non-negative \(0 = one per CPU\), got -2"
        ):
            main(["fig2", "--jobs", "-2"])

    def test_jobs_zero_means_auto(self, monkeypatch, tmp_path, capsys):
        import os

        seen = {}
        import repro.runtime as runtime_module

        real_use_runtime = runtime_module.use_runtime

        def spy_use_runtime(jobs=1, **kwargs):
            seen["jobs"] = jobs
            return real_use_runtime(jobs=jobs, **kwargs)

        monkeypatch.setattr(runtime_module, "use_runtime", spy_use_runtime)
        assert main([
            "fig2", "--packets", "30", "--interarrivals", "20",
            "--jobs", "0", "--cache-dir", str(tmp_path),
        ]) == 0
        assert seen["jobs"] == (os.cpu_count() or 1)

    def test_negative_retries_rejected(self):
        with pytest.raises(SystemExit, match="--retries must be non-negative"):
            main(["fig2", "--retries", "-1"])

    def test_negative_item_timeout_rejected(self):
        with pytest.raises(
            SystemExit, match="--item-timeout must be a positive number of seconds"
        ):
            main(["fig2", "--item-timeout", "-5"])

    def test_zero_item_timeout_rejected(self):
        with pytest.raises(
            SystemExit, match="--item-timeout must be a positive number of seconds"
        ):
            main(["run", "--item-timeout", "0"])

    def test_validation_fires_before_any_simulation(self, monkeypatch):
        # The SystemExit must come from option validation, not from a
        # traceback deep inside the executor: no simulation may start.
        import repro.experiments.fig2 as fig2_module

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("simulation ran despite invalid options")

        monkeypatch.setattr(fig2_module, "figure2", boom)
        with pytest.raises(SystemExit, match="--retries must be non-negative"):
            main(["fig2", "--retries", "-3"])

    def test_resume_requires_cache(self):
        with pytest.raises(SystemExit, match="--resume needs the result cache"):
            main(["fig2", "--resume", "--no-cache"])


class TestResumeOption:
    def test_resumed_rerun_reports_journal_hits(self, tmp_path, capsys):
        argv = [
            "fig2", "--packets", "40", "--interarrivals", "4,20",
            "--jobs", "2", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "journal: 0 resumed, 6 recorded" in first

        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "journal: 6 resumed, 0 recorded" in second
        assert "cache: 0 hits, 0 misses" in second  # cells never recomputed

        def strip(text):
            return [
                line for line in text.splitlines()
                if not line.startswith(("cache:", "journal:"))
            ]

        assert strip(first) == strip(second)


class TestScenariosCommand:
    def test_list_defenses(self, capsys):
        assert main(["scenarios", "--list-defenses"]) == 0
        out = capsys.readouterr().out
        for name in ("no-delay", "rcad", "drop-tail", "phantom"):
            assert name in out
        assert "walk_length" in out

    def test_example_round_trips(self, capsys):
        import json

        from repro.scenarios import example_suite, parse_suite

        assert main(["scenarios", "--example"]) == 0
        out = capsys.readouterr().out
        assert parse_suite(json.loads(out)) == example_suite()

    def test_missing_spec_is_friendly(self):
        with pytest.raises(SystemExit, match="--example"):
            main(["scenarios"])

    def test_unknown_scenario_name_rejected(self, tmp_path, capsys):
        import json

        from repro.scenarios import example_suite, suite_to_dict

        path = tmp_path / "suite.json"
        path.write_text(json.dumps(suite_to_dict(example_suite())))
        with pytest.raises(SystemExit, match="nope"):
            main(["scenarios", str(path), "--scenario", "nope"])

    def test_small_suite_runs_and_exports(self, tmp_path, capsys):
        import json

        suite = {
            "scenarios": [
                {
                    "name": "mini",
                    "topology": {"family": "line", "n_nodes": 5},
                    "traffic": [{"model": "periodic", "interarrival": 6.0}],
                    "defenses": [{"name": "no-delay"}, {"name": "rcad"}],
                    "n_packets": 4,
                }
            ]
        }
        spec_path = tmp_path / "suite.json"
        spec_path.write_text(json.dumps(suite))
        out_path = tmp_path / "out.json"
        code = main([
            "scenarios", str(spec_path),
            "--cache-dir", str(tmp_path / "cache"),
            "--json", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario mini" in out
        assert "no-delay" in out and "rcad" in out
        payload = json.loads(out_path.read_text())
        assert len(payload["summaries"]) == 2
        by_defense = {s["defense"]: s for s in payload["summaries"]}
        assert by_defense["no-delay"]["mse"] == 0.0
        assert by_defense["rcad"]["mse"] > 0.0


class TestCacheSubcommand:
    def _warm(self, tmp_path):
        main([
            "fig2", "--packets", "30", "--interarrivals", "20",
            "--cache-dir", str(tmp_path),
        ])

    def test_stats_counts_entries_and_journal(self, tmp_path, capsys):
        self._warm(tmp_path)
        capsys.readouterr()
        assert main(["cache", "--cache-dir", str(tmp_path), "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries         : 3" in out
        assert "quarantined     : 0" in out
        assert "journal         : 1 sweeps" in out

    def test_verify_moves_corrupt_entry_to_quarantine(self, tmp_path, capsys):
        self._warm(tmp_path)
        capsys.readouterr()
        from repro.runtime import ResultCache

        victim = next(ResultCache(tmp_path).iter_entry_paths())
        victim.write_bytes(b"bit rot")
        assert main(["cache", "--cache-dir", str(tmp_path), "verify"]) == 0
        out = capsys.readouterr().out
        assert "verified 3 entries: 2 ok, 1 quarantined" in out
        assert (tmp_path / "quarantine" / victim.name).exists()

    def test_purge_reclaims_space_and_journal(self, tmp_path, capsys):
        self._warm(tmp_path)
        capsys.readouterr()
        assert main(["cache", "--cache-dir", str(tmp_path), "purge"]) == 0
        out = capsys.readouterr().out
        assert "purged 3 cache files and 1 journal sweeps" in out
        capsys.readouterr()
        main(["cache", "--cache-dir", str(tmp_path), "stats"])
        assert "entries         : 0" in capsys.readouterr().out

    def test_prune_respects_byte_budget(self, tmp_path, capsys):
        self._warm(tmp_path)
        capsys.readouterr()
        assert main([
            "cache", "--cache-dir", str(tmp_path), "prune", "--max-bytes", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "pruned 3 oldest entries" in out
        assert "0 entries (0 bytes) remain" in out

    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["cache"])

    def test_prune_without_flags_rejected(self, tmp_path):
        with pytest.raises(
            SystemExit, match="--max-bytes and/or --compact-journals"
        ):
            main(["cache", "--cache-dir", str(tmp_path), "prune"])

    def test_prune_negative_max_bytes_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="--max-bytes must be non-negative"):
            main([
                "cache", "--cache-dir", str(tmp_path), "prune",
                "--max-bytes", "-1",
            ])

    def test_prune_compact_journals_drops_superseded_lines(
        self, tmp_path, capsys
    ):
        from repro.runtime import SweepJournal

        journal = SweepJournal(tmp_path / "journal", "sweep1", n_items=2)
        journal.record(0, "old")
        journal.record(0, "new")  # superseded
        journal.record(1, "only")
        journal.close()
        fabric_journal = tmp_path / "fabric" / "abc123" / "results" / "w0.jsonl"
        fabric_journal.parent.mkdir(parents=True)
        fabric_journal.write_text(
            '{"kind": "event", "event": "steal", "index": 0, "worker": "w0"}\n'
        )

        assert main([
            "cache", "--cache-dir", str(tmp_path), "prune",
            "--compact-journals",
        ]) == 0
        out = capsys.readouterr().out
        assert "compacted 2 journals" in out
        assert "dropped 2 lines" in out
        loaded = SweepJournal(
            tmp_path / "journal", "sweep1", n_items=2, resume=True
        ).load()
        assert loaded == {0: "new", 1: "only"}
        assert fabric_journal.read_text() == ""  # only the event, now gone

    def test_prune_combines_max_bytes_and_compaction(self, tmp_path, capsys):
        self._warm(tmp_path)
        capsys.readouterr()
        assert main([
            "cache", "--cache-dir", str(tmp_path), "prune",
            "--max-bytes", "1", "--compact-journals",
        ]) == 0
        out = capsys.readouterr().out
        assert "pruned 3 oldest entries" in out
        assert "compacted 1 journals" in out


class TestResilienceOptions:
    def test_flags_map_to_retry_policy_and_journal(self, monkeypatch, tmp_path):
        import repro.runtime as runtime_module

        seen = {}
        real_use_runtime = runtime_module.use_runtime

        def spy_use_runtime(jobs=1, **kwargs):
            seen.update(kwargs, jobs=jobs)
            return real_use_runtime(jobs=jobs, **kwargs)

        monkeypatch.setattr(runtime_module, "use_runtime", spy_use_runtime)
        assert main([
            "fig2", "--packets", "30", "--interarrivals", "20",
            "--cache-dir", str(tmp_path),
            "--retries", "2", "--item-timeout", "5", "--quarantine",
        ]) == 0
        policy = seen["retry"]
        assert policy.max_attempts == 3  # --retries counts extra attempts
        assert policy.timeout == 5.0
        assert policy.on_failure == "quarantine"
        assert seen["journal_dir"] == tmp_path / "journal"
        assert seen["resume"] is False


class TestChaosCommand:
    def test_chaos_small(self, capsys):
        assert main([
            "chaos", "--packets", "40", "--seed", "2",
            "--intensities", "0,1", "--no-arq",
        ]) == 0
        out = capsys.readouterr().out
        assert "chaos sweep" in out
        assert "drop-tail" in out and "rcad" in out

    def test_invalid_intensities_rejected(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--intensities", "0,2"])
        with pytest.raises(SystemExit):
            main(["chaos", "--intensities", "nope"])


class TestFabricCommands:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["sweep-fabric"])
        assert args.workers == 2
        assert args.lease_ttl == 30.0
        assert args.heartbeat_interval is None
        assert args.fabric_dir is None

    @pytest.mark.parametrize(
        ("argv", "message"),
        [
            (["sweep-fabric", "--workers", "-1"],
             r"--workers must be non-negative"),
            (["sweep-fabric", "--lease-ttl", "0"],
             r"--lease-ttl must be a positive number of seconds"),
            (["sweep-fabric", "--lease-ttl", "-3"],
             r"--lease-ttl must be a positive number of seconds"),
            (["sweep-fabric", "--heartbeat-interval", "0"],
             r"--heartbeat-interval must be a positive number of seconds"),
            (["sweep-fabric", "--heartbeat-interval", "30", "--lease-ttl", "30"],
             r"--heartbeat-interval .* must be below --lease-ttl"),
        ],
        ids=lambda value: " ".join(value) if isinstance(value, list) else None,
    )
    def test_invalid_fabric_options_rejected(self, argv, message):
        with pytest.raises(SystemExit, match=message):
            main(argv)

    def test_validation_fires_before_any_fork(self, monkeypatch):
        import repro.runtime.fabric as fabric_module

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("fabric ran despite invalid options")

        monkeypatch.setattr(fabric_module, "run_fabric", boom)
        with pytest.raises(SystemExit, match="--workers must be non-negative"):
            main(["sweep-fabric", "--workers", "-5"])

    def test_worker_rejects_bad_heartbeat(self, tmp_path):
        with pytest.raises(
            SystemExit,
            match="--heartbeat-interval must be a positive number of seconds",
        ):
            main(["worker", str(tmp_path), "--heartbeat-interval", "0"])

    def test_worker_rejects_missing_grid(self, tmp_path):
        with pytest.raises(SystemExit, match="no grid"):
            main(["worker", str(tmp_path / "nowhere")])

    @pytest.mark.parametrize(
        ("argv", "message"),
        [
            (["sweep-fabric", "--listen", "nope"],
             r"invalid --listen endpoint.*host:port"),
            (["sweep-fabric", "--listen", ":8000"],
             r"invalid --listen endpoint.*empty host"),
            (["sweep-fabric", "--listen", "host:70000"],
             r"invalid --listen endpoint"),
            (["sweep-fabric", "--listen", "host:http"],
             r"invalid --listen endpoint.*non-numeric"),
            (["worker", "--connect", "nope"],
             r"invalid --connect endpoint.*host:port"),
            (["worker", "--connect", "host:0"],
             r"invalid --connect endpoint"),
            (["worker", "--connect", "host:-1"],
             r"invalid --connect endpoint"),
        ],
        ids=lambda value: " ".join(value) if isinstance(value, list) else None,
    )
    def test_invalid_endpoints_rejected_before_network_io(self, argv, message):
        """Endpoint validation is a clean SystemExit, no socket touched."""
        with pytest.raises(SystemExit, match=message):
            main(argv)

    def test_listen_port_zero_is_allowed(self, monkeypatch):
        import repro.runtime.fabric as fabric_module

        seen = {}

        def fake_run_fabric(fn, items, config=None, **kwargs):
            seen["listen"] = config.listen
            raise fabric_module.FabricError("stop here")

        monkeypatch.setattr(fabric_module, "run_fabric", fake_run_fabric)
        with pytest.raises(SystemExit, match="stop here"):
            main(["sweep-fabric", "--listen", "127.0.0.1:0", "--no-cache"])
        assert seen["listen"] == "127.0.0.1:0"

    def test_worker_needs_directory_or_connect(self):
        with pytest.raises(
            SystemExit, match="fabric directory, --connect"
        ):
            main(["worker"])

    def test_worker_connect_refused_is_a_clean_exit(self, monkeypatch):
        import socket

        from repro.runtime import transport as transport_module

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        original = transport_module.TransportClient.__init__

        def fast_init(self, endpoint, worker_id="client", **kwargs):
            kwargs["max_retry_elapsed"] = 0.3
            original(self, endpoint, worker_id, **kwargs)

        monkeypatch.setattr(
            transport_module.TransportClient, "__init__", fast_init
        )
        with pytest.raises(SystemExit, match="unreachable"):
            main(["worker", "--connect", f"127.0.0.1:{port}"])

    def test_sweep_fabric_matches_fig2_output(self, tmp_path, capsys):
        fig2_argv = [
            "fig2", "--packets", "40", "--seed", "1",
            "--interarrivals", "4,20", "--no-cache",
        ]
        assert main(fig2_argv) == 0
        fig2_out = capsys.readouterr().out

        assert main([
            "sweep-fabric", "--packets", "40", "--seed", "1",
            "--interarrivals", "4,20", "--workers", "2",
            "--lease-ttl", "10", "--no-cache",
            "--fabric-dir", str(tmp_path / "fab"),
        ]) == 0
        fabric_out = capsys.readouterr().out
        assert "fabric:" in fabric_out
        assert "worker w" in fabric_out

        def tables_only(text):
            lines = []
            for line in text.splitlines():
                if line.startswith(("cache:", "journal:", "fabric")):
                    continue
                if line.startswith("  worker "):
                    continue
                lines.append(line)
            return [line for line in lines if line.strip()]

        assert tables_only(fig2_out) == tables_only(fabric_out)


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.shards == 4
        assert args.capacity == 64
        assert args.max_buffered == 256
        assert args.port == 0
        assert args.burst_factor == 1.0
        assert args.snapshot is None

    @pytest.mark.parametrize(
        "argv",
        [
            ["serve", "--rate", "0"],
            ["serve", "--rate", "-5"],
            ["serve", "--flows", "0"],
            ["serve", "--events", "-1"],
            ["serve", "--duration", "0"],
            ["serve", "--burst-factor", "0.5"],
            ["serve", "--port", "-2"],
            ["serve", "--drain-timeout", "0"],
            ["serve", "--shards", "0"],
            ["serve", "--mean-delay", "0"],
        ],
        ids=lambda argv: " ".join(argv[1:]),
    )
    def test_invalid_options_rejected(self, argv):
        with pytest.raises(SystemExit):
            main(argv)

    def test_tiny_run_end_to_end(self, capsys, tmp_path):
        import json

        report = tmp_path / "report.json"
        assert main([
            "serve", "--events", "40", "--rate", "4000",
            "--mean-delay", "0.005", "--port", "-1",
            "--report", str(report),
        ]) == 0
        out = capsys.readouterr().out
        assert "service up" in out
        assert "submitted       : 40" in out
        payload = json.loads(report.read_text())
        assert payload["submitted"] == 40
        assert len(payload["releases"]) == payload["outcomes"]["admitted"]
