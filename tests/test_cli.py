"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig2_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.packets == 1000
        assert args.seed == 0

    def test_run_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--case", "bogus"])

    def test_fig3_path_aware_flag(self):
        args = build_parser().parse_args(["fig3", "--path-aware"])
        assert args.path_aware is True


class TestCommands:
    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "S1" in out and "15" in out

    def test_fig2_small(self, capsys):
        code = main(
            ["fig2", "--packets", "60", "--seed", "1", "--interarrivals", "4,20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 2(a)" in out and "Figure 2(b)" in out
        assert "NoDelay" in out and "Delay&LimitedBuffers" in out

    def test_fig3_small(self, capsys):
        code = main(
            ["fig3", "--packets", "60", "--seed", "1", "--interarrivals", "4,20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "BaselineAdversary" in out and "AdaptiveAdversary" in out

    def test_run_rcad(self, capsys):
        code = main(
            ["run", "--case", "rcad", "--packets", "60", "--interarrival", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "adversary MSE" in out
        assert "preemptions" in out

    def test_run_no_delay_zero_mse(self, capsys):
        main(["run", "--case", "no-delay", "--packets", "30"])
        out = capsys.readouterr().out
        assert "adversary MSE   : 0.0" in out

    def test_invalid_sweep_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig2", "--interarrivals", "2,apple"])
        with pytest.raises(SystemExit):
            main(["fig2", "--interarrivals", "-3"])

    def test_fig3_csv_and_json_export(self, tmp_path, capsys):
        csv_path = tmp_path / "fig3.csv"
        json_path = tmp_path / "fig3.json"
        code = main([
            "fig3", "--packets", "40", "--seed", "1",
            "--interarrivals", "4,20",
            "--csv", str(csv_path), "--json", str(json_path),
        ])
        assert code == 0
        csv_text = csv_path.read_text()
        assert csv_text.splitlines()[0].startswith("1/lambda,")
        assert len(csv_text.strip().splitlines()) == 3  # header + 2 rows
        from repro.analysis.records import ExperimentTable

        restored = ExperimentTable.from_json(json_path.read_text())
        assert [s.label for s in restored.series] == [
            "BaselineAdversary", "AdaptiveAdversary",
        ]

    def test_theory_fast(self, capsys):
        assert main(["theory", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "bits-through-queues" in out
        assert "EPI lower bound" in out
        assert "exponential" in out

    def test_queueing_fast(self, capsys):
        assert main(["queueing", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "M/M/inf validation" in out
        assert "Erlang loss validation" in out
        assert "QueueTreeModel" in out

    def test_fig2_export_writes_both_panels(self, tmp_path, capsys):
        base = tmp_path / "fig2.csv"
        main([
            "fig2", "--packets", "40", "--seed", "1",
            "--interarrivals", "4", "--csv", str(base),
        ])
        assert base.exists()
        assert (tmp_path / "fig2.csv.latency.csv").exists()


class TestChaosCommand:
    def test_chaos_small(self, capsys):
        assert main([
            "chaos", "--packets", "40", "--seed", "2",
            "--intensities", "0,1", "--no-arq",
        ]) == 0
        out = capsys.readouterr().out
        assert "chaos sweep" in out
        assert "drop-tail" in out and "rcad" in out

    def test_invalid_intensities_rejected(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--intensities", "0,2"])
        with pytest.raises(SystemExit):
            main(["chaos", "--intensities", "nope"])
