"""Checkpoint journal: record, verified load, resume, self-healing."""

import json

import pytest

from repro.analysis.sweep import sweep
from repro.runtime import (
    RetryPolicy,
    SweepJournal,
    compact_journal,
    sweep_fingerprint,
    use_runtime,
)


class TestSweepFingerprint:
    def test_stable_across_calls(self):
        a = sweep_fingerprint("label", [1, 2, 3])
        assert a == sweep_fingerprint("label", [1, 2, 3])

    def test_sensitive_to_label_and_items(self):
        base = sweep_fingerprint("label", [1, 2, 3])
        assert sweep_fingerprint("other", [1, 2, 3]) != base
        assert sweep_fingerprint("label", [1, 2]) != base

    def test_unfingerprintable_items_raise(self):
        with pytest.raises(TypeError):
            sweep_fingerprint("label", [lambda x: x])


class TestSweepJournal:
    def test_round_trip(self, tmp_path):
        journal = SweepJournal(tmp_path, "abc123", n_items=3)
        journal.record(0, {"value": 1.5})
        journal.record(2, (4, 5))
        journal.close()

        loaded = SweepJournal(tmp_path, "abc123", n_items=3, resume=True).load()
        assert loaded == {0: {"value": 1.5}, 2: (4, 5)}

    def test_torn_line_is_skipped_not_raised(self, tmp_path):
        journal = SweepJournal(tmp_path, "torn", n_items=2)
        journal.record(0, "good")
        journal.close()
        with journal.path.open("a") as handle:
            handle.write('{"kind": "cell", "index": 1, "sha": "tr')  # SIGINT mid-write

        reloaded = SweepJournal(tmp_path, "torn", n_items=2, resume=True)
        assert reloaded.load() == {0: "good"}
        assert reloaded.corrupt_lines == 1

    def test_checksum_mismatch_is_skipped(self, tmp_path):
        journal = SweepJournal(tmp_path, "sum", n_items=1)
        journal.record(0, "payload")
        journal.close()
        lines = journal.path.read_text().splitlines()
        entry = json.loads(lines[-1])
        entry["sha"] = "0" * 64
        journal.path.write_text("\n".join(lines[:-1] + [json.dumps(entry)]) + "\n")

        reloaded = SweepJournal(tmp_path, "sum", n_items=1, resume=True)
        assert reloaded.load() == {}
        assert reloaded.corrupt_lines == 1

    def test_out_of_range_index_is_skipped(self, tmp_path):
        journal = SweepJournal(tmp_path, "range", n_items=5)
        journal.record(4, "ok")
        journal.close()
        # The same file interpreted as a smaller sweep rejects index 4.
        reloaded = SweepJournal(tmp_path, "range", n_items=2, resume=True)
        assert reloaded.load() == {}
        assert reloaded.corrupt_lines == 1

    def test_fresh_run_truncates_stale_journal(self, tmp_path):
        journal = SweepJournal(tmp_path, "trunc", n_items=2)
        journal.record(0, "old")
        journal.close()
        fresh = SweepJournal(tmp_path, "trunc", n_items=2, resume=False)
        fresh.record(1, "new")
        fresh.close()
        loaded = SweepJournal(tmp_path, "trunc", n_items=2, resume=True).load()
        assert loaded == {1: "new"}


class TestCompaction:
    def _journal(self, tmp_path, sweep_id="compact", n_items=4):
        return SweepJournal(tmp_path, sweep_id, n_items=n_items)

    def test_superseded_records_are_dropped_load_unchanged(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.record(0, "first")
        journal.record(1, "only")
        journal.record(0, "second")  # a retry re-recorded cell 0
        journal.record(0, "third")
        journal.close()

        before = SweepJournal(tmp_path, "compact", n_items=4, resume=True).load()
        stats = compact_journal(journal.path)
        after = SweepJournal(tmp_path, "compact", n_items=4, resume=True).load()

        assert after == before == {0: "third", 1: "only"}
        assert stats.dropped_superseded == 2
        assert stats.lines_after == 3  # header + 2 cells
        assert stats.bytes_reclaimed > 0

    def test_event_and_corrupt_lines_are_dropped(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.record(0, "keep")
        journal.close()
        with journal.path.open("a") as handle:
            handle.write(
                '{"kind": "event", "event": "steal", "index": 0, '
                '"worker": "w1"}\n'
            )
            handle.write("totally not json\n")
            handle.write('{"kind": "cell", "index": 1, "sha": "tr')  # torn

        stats = compact_journal(journal.path)
        assert stats.dropped_events == 1
        assert stats.dropped_corrupt == 2
        reloaded = SweepJournal(tmp_path, "compact", n_items=4, resume=True)
        assert reloaded.load() == {0: "keep"}
        assert reloaded.corrupt_lines == 0  # compaction healed the file

    def test_failed_record_kept_unless_superseded(self, tmp_path):
        import json as json_module

        journal = self._journal(tmp_path)
        journal.record(0, "ok")
        journal.close()
        with journal.path.open("a") as handle:
            handle.write(json_module.dumps(
                {"kind": "failed", "index": 1, "error": "boom"}
            ) + "\n")
            handle.write(json_module.dumps(
                {"kind": "failed", "index": 0, "error": "stale failure"}
            ) + "\n")

        compact_journal(journal.path)
        lines = [
            json_module.loads(line)
            for line in journal.path.read_text().splitlines()
        ]
        kinds = [(entry["kind"], entry.get("index")) for entry in lines]
        # Cell 0 succeeded, so its failure line is dropped; cell 1 has
        # only a failure, which is preserved.
        assert ("failed", 1) in kinds
        assert ("failed", 0) not in kinds
        assert ("cell", 0) in kinds

    def test_clean_journal_left_untouched(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.record(0, "a")
        journal.record(1, "b")
        journal.close()
        raw = journal.path.read_bytes()
        mtime = journal.path.stat().st_mtime_ns

        stats = compact_journal(journal.path)
        assert stats.bytes_reclaimed == 0
        assert journal.path.read_bytes() == raw
        assert journal.path.stat().st_mtime_ns == mtime  # no rewrite at all

    def test_header_survives_compaction(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.record(0, "x")
        journal.record(0, "y")
        journal.close()
        compact_journal(journal.path)
        first = json.loads(journal.path.read_text().splitlines()[0])
        assert first["kind"] == "header"
        assert first["sweep"] == "compact"


class TestSweepResume:
    def test_resumed_sweep_recomputes_zero_cells(self, tmp_path):
        calls = []

        def cell(x):
            calls.append(x)
            return x * x

        with use_runtime(journal_dir=tmp_path) as first:
            assert sweep([1, 2, 3], cell) == [1, 4, 9]
        assert first.journal_stats.recorded == 3
        assert calls == [1, 2, 3]

        calls.clear()
        with use_runtime(journal_dir=tmp_path, resume=True) as second:
            assert sweep([1, 2, 3], cell) == [1, 4, 9]
        assert calls == []  # acceptance: zero recomputation
        assert second.journal_stats.resumed == 3

    def test_partial_journal_resumes_only_missing_cells(self, tmp_path):
        calls = []

        def cell(x):
            calls.append(x)
            return x + 100

        # Simulate an interrupted run: journal holds cells 0 and 2 only.
        from repro.runtime.supervisor import _sweep_label

        sid = sweep_fingerprint(_sweep_label(cell), [1, 2, 3])
        journal = SweepJournal(tmp_path, sid, n_items=3)
        journal.record(0, 101)
        journal.record(2, 103)
        journal.close()

        with use_runtime(journal_dir=tmp_path, resume=True) as ctx:
            result = sweep([1, 2, 3], cell)
        assert result == [101, 102, 103]
        assert ctx.journal_stats.resumed == 2
        assert ctx.journal_stats.recorded == 1
        assert calls == [2]  # only the missing middle cell recomputed

    def test_parallel_sweep_journals_and_resumes(self, tmp_path):
        def cell(x):
            return x * 7

        with use_runtime(jobs=2, journal_dir=tmp_path) as first:
            assert sweep([1, 2, 3, 4], cell) == [7, 14, 21, 28]
        assert first.journal_stats.recorded == 4

        with use_runtime(jobs=2, journal_dir=tmp_path, resume=True) as second:
            assert sweep([1, 2, 3, 4], cell) == [7, 14, 21, 28]
        assert second.journal_stats.resumed == 4
        assert second.journal_stats.recorded == 0

    def test_quarantined_cells_are_not_journaled(self, tmp_path):
        def bad(x):
            if x == 2:
                raise ValueError("doomed")
            return x

        policy = RetryPolicy(max_attempts=1, backoff=0.01, on_failure="quarantine")
        with use_runtime(journal_dir=tmp_path, retry=policy) as ctx:
            assert sweep([1, 2, 3], bad) == [1, None, 3]
        assert ctx.journal_stats.recorded == 2

        # On resume the quarantined cell is recomputed (and succeeds if
        # the underlying fault was transient).
        with use_runtime(journal_dir=tmp_path, resume=True) as ctx:
            assert sweep([1, 2, 3], lambda x: x) == [1, 2, 3]

    def test_unfingerprintable_items_skip_journaling(self, tmp_path):
        # Items the fingerprint encoder rejects: sweep still runs, just
        # without a journal.
        items = [lambda: 1, lambda: 2]
        with use_runtime(journal_dir=tmp_path, resume=True) as ctx:
            result = sweep(items, lambda f: f())
        assert result == [1, 2]
        assert ctx.journal_stats.recorded == 0
        assert not list(tmp_path.iterdir())
