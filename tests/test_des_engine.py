"""Unit tests for the discrete-event scheduler."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.des import SchedulingInPastError, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.0, seen.append, "c")
        sim.schedule(1.0, seen.append, "a")
        sim.schedule(2.0, seen.append, "b")
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_simultaneous_events_run_fifo(self):
        sim = Simulator()
        seen = []
        for tag in range(8):
            sim.schedule(5.0, seen.append, tag)
        sim.run()
        assert seen == list(range(8))

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        times = []
        sim.schedule(4.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [4.5]
        assert sim.now == 4.5

    def test_schedule_in_past_raises(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SchedulingInPastError):
            sim.schedule(9.0, lambda: None)

    def test_schedule_at_now_is_allowed(self):
        sim = Simulator(start_time=10.0)
        fired = []
        sim.schedule(10.0, fired.append, True)
        sim.run()
        assert fired == [True]

    def test_schedule_nan_raises(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(float("nan"), lambda: None)

    def test_schedule_after_negative_raises(self):
        sim = Simulator()
        with pytest.raises(SchedulingInPastError):
            sim.schedule_after(-1.0, lambda: None)

    def test_schedule_after_is_relative(self):
        sim = Simulator()
        hit = []
        sim.schedule(5.0, lambda: sim.schedule_after(2.5, lambda: hit.append(sim.now)))
        sim.run()
        assert hit == [7.5]

    def test_events_scheduled_during_execution_run(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append("first")
            sim.schedule_after(0.0, seen.append, "second")

        sim.schedule(1.0, first)
        sim.run()
        assert seen == ["first", "second"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        assert handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_returns_false_after_firing(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        assert handle.fired
        assert not handle.cancel()

    def test_double_cancel_returns_false(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        assert handle.cancel()
        assert not handle.cancel()

    def test_pending_transitions(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        assert handle.pending
        sim.run()
        assert not handle.pending
        assert handle.fired and not handle.cancelled

    def test_cancel_mid_run(self):
        sim = Simulator()
        fired = []
        later = sim.schedule(2.0, fired.append, "later")
        sim.schedule(1.0, later.cancel)
        sim.run()
        assert fired == []


class TestRunModes:
    def test_run_returns_event_count(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: None)
        assert sim.run() == 3
        assert sim.events_processed == 3

    def test_run_max_events_stops_early(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: None)
        assert sim.run(max_events=2) == 2
        assert sim.pending_count == 1

    def test_run_until_executes_only_due_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, "a")
        sim.schedule(5.0, seen.append, "b")
        executed = sim.run_until(3.0)
        assert executed == 1
        assert seen == ["a"]
        assert sim.now == 3.0

    def test_run_until_includes_boundary(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.0, seen.append, "edge")
        sim.run_until(3.0)
        assert seen == ["edge"]

    def test_run_until_never_moves_clock_backwards(self):
        sim = Simulator(start_time=10.0)
        sim.run_until(5.0)
        assert sim.now == 10.0

    def test_step_on_empty_returns_false(self):
        assert Simulator().step() is False

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek() == 2.0

    def test_peek_empty_is_inf(self):
        assert Simulator().peek() == math.inf

    def test_pending_count_excludes_cancelled(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.pending_count == 1

    def test_last_event_time_does_not_jump_to_horizon(self):
        """run_until consumes the horizon on the clock, but the last
        event time marks when activity really ended -- time-averaged
        statistics must divide by the latter."""
        sim = Simulator()
        sim.schedule(3.0, lambda: None)
        sim.run_until(1_000_000.0)
        assert sim.now == 1_000_000.0
        assert sim.last_event_time == 3.0

    def test_last_event_time_initial(self):
        assert Simulator(start_time=5.0).last_event_time == 5.0


class TestProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60))
    def test_execution_order_is_sorted_stable(self, times):
        sim = Simulator()
        order = []
        for index, t in enumerate(times):
            sim.schedule(t, order.append, (t, index))
        sim.run()
        # Sorted by time; equal times keep submission order.
        assert order == sorted(order, key=lambda pair: (pair[0], pair[1]))

    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=40),
        st.data(),
    )
    def test_cancelled_subset_never_fires(self, times, data):
        sim = Simulator()
        fired = []
        handles = [sim.schedule(t, fired.append, i) for i, t in enumerate(times)]
        to_cancel = data.draw(
            st.sets(st.integers(min_value=0, max_value=len(times) - 1))
        )
        for index in to_cancel:
            handles[index].cancel()
        sim.run()
        assert set(fired) == set(range(len(times))) - to_cancel
