"""Unit tests for the analytic M/M/infinity and M/M/k/k models."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.queueing.erlang import erlang_b
from repro.queueing.mminf import MMInfinityQueue
from repro.queueing.mmkk import MMkkQueue

# The paper's single-flow operating point: lambda = 0.5, 1/mu = 30.
PAPER_QUEUE = MMInfinityQueue(arrival_rate=0.5, service_rate=1.0 / 30.0)


class TestMMInfinity:
    def test_offered_load_is_mean_occupancy(self):
        assert PAPER_QUEUE.offered_load == pytest.approx(15.0)
        assert PAPER_QUEUE.mean_occupancy == pytest.approx(15.0)
        assert PAPER_QUEUE.occupancy_variance == pytest.approx(15.0)

    def test_pmf_is_poisson(self):
        # p_k = rho^k e^-rho / k! (paper Section 4).
        rho = PAPER_QUEUE.offered_load
        for k in (0, 1, 15, 40):
            expected = rho**k * math.exp(-rho) / math.factorial(k)
            assert PAPER_QUEUE.occupancy_pmf(k) == pytest.approx(expected, rel=1e-9)

    def test_pmf_sums_to_one(self):
        total = sum(PAPER_QUEUE.occupancy_pmf(k) for k in range(200))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_pmf_negative_is_zero(self):
        assert PAPER_QUEUE.occupancy_pmf(-1) == 0.0

    def test_zero_load_degenerate(self):
        queue = MMInfinityQueue(arrival_rate=0.0, service_rate=1.0)
        assert queue.occupancy_pmf(0) == 1.0
        assert queue.occupancy_pmf(3) == 0.0

    def test_cdf_and_quantile_consistent(self):
        q90 = PAPER_QUEUE.occupancy_quantile(0.9)
        assert PAPER_QUEUE.occupancy_cdf(q90) >= 0.9
        assert PAPER_QUEUE.occupancy_cdf(q90 - 1) < 0.9

    def test_mean_sojourn_is_inverse_mu(self):
        assert PAPER_QUEUE.mean_sojourn == pytest.approx(30.0)

    def test_transient_starts_at_initial_and_converges(self):
        assert PAPER_QUEUE.transient_mean_occupancy(0.0) == 0.0
        assert PAPER_QUEUE.transient_mean_occupancy(0.0, initial=4) == 4.0
        late = PAPER_QUEUE.transient_mean_occupancy(10_000.0)
        assert late == pytest.approx(15.0, rel=1e-6)

    def test_transient_monotone_from_empty(self):
        values = [PAPER_QUEUE.transient_mean_occupancy(t) for t in (0, 10, 30, 90, 300)]
        assert values == sorted(values)

    def test_sojourn_pdf(self):
        assert PAPER_QUEUE.sojourn_pdf(0.0) == pytest.approx(1.0 / 30.0)
        assert PAPER_QUEUE.sojourn_pdf(-1.0) == 0.0

    def test_departure_rate_burke(self):
        assert PAPER_QUEUE.departure_rate() == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            MMInfinityQueue(arrival_rate=-1.0, service_rate=1.0)
        with pytest.raises(ValueError):
            MMInfinityQueue(arrival_rate=1.0, service_rate=0.0)
        with pytest.raises(ValueError):
            PAPER_QUEUE.transient_mean_occupancy(-1.0)
        with pytest.raises(ValueError):
            PAPER_QUEUE.occupancy_quantile(1.0)

    @given(
        st.floats(min_value=0.01, max_value=50.0),
        st.floats(min_value=0.01, max_value=50.0),
    )
    def test_mean_equals_rho_property(self, lam, mu):
        queue = MMInfinityQueue(arrival_rate=lam, service_rate=mu)
        assert queue.mean_occupancy == pytest.approx(lam / mu)


class TestMMkk:
    # The paper's RCAD operating point at 1/lambda = 2 on the trunk.
    QUEUE = MMkkQueue(arrival_rate=0.5, service_rate=1.0 / 30.0, capacity=10)

    def test_blocking_matches_erlang(self):
        assert self.QUEUE.blocking_probability == pytest.approx(erlang_b(15.0, 10))

    def test_pmf_truncated_and_normalized(self):
        total = sum(self.QUEUE.occupancy_pmf(n) for n in range(11))
        assert total == pytest.approx(1.0, abs=1e-12)
        assert self.QUEUE.occupancy_pmf(11) == 0.0
        assert self.QUEUE.occupancy_pmf(-1) == 0.0

    def test_pmf_proportional_to_poisson(self):
        """Truncation preserves ratios: p_k / p_0 = rho^k / k!."""
        rho = self.QUEUE.offered_load
        ratio = self.QUEUE.occupancy_pmf(3) / self.QUEUE.occupancy_pmf(0)
        assert ratio == pytest.approx(rho**3 / math.factorial(3), rel=1e-9)

    def test_blocking_is_full_state_probability(self):
        """PASTA: arriving packets see the time-average full probability."""
        assert self.QUEUE.occupancy_pmf(10) == pytest.approx(
            self.QUEUE.blocking_probability, rel=1e-9
        )

    def test_carried_rate(self):
        expected = 0.5 * (1.0 - self.QUEUE.blocking_probability)
        assert self.QUEUE.carried_rate == pytest.approx(expected)

    def test_littles_law(self):
        """E[N] = carried rate * mean service time."""
        assert self.QUEUE.mean_occupancy == pytest.approx(
            self.QUEUE.carried_rate * 30.0, rel=1e-9
        )

    def test_mean_occupancy_below_capacity(self):
        assert self.QUEUE.mean_occupancy < 10

    def test_preemption_rate(self):
        assert self.QUEUE.preemption_rate() == pytest.approx(
            0.5 * self.QUEUE.blocking_probability
        )

    def test_cdf_reaches_one(self):
        assert self.QUEUE.occupancy_cdf(10) == pytest.approx(1.0)
        assert self.QUEUE.occupancy_cdf(500) == pytest.approx(1.0)

    def test_light_load_rarely_blocks(self):
        queue = MMkkQueue(arrival_rate=0.05, service_rate=1.0 / 30.0, capacity=10)
        assert queue.blocking_probability < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            MMkkQueue(arrival_rate=1.0, service_rate=1.0, capacity=0)
        with pytest.raises(ValueError):
            MMkkQueue(arrival_rate=-1.0, service_rate=1.0, capacity=1)
        with pytest.raises(ValueError):
            MMkkQueue(arrival_rate=1.0, service_rate=-1.0, capacity=1)

    @given(
        st.floats(min_value=0.01, max_value=30.0),
        st.floats(min_value=0.01, max_value=5.0),
        st.integers(min_value=1, max_value=30),
    )
    def test_truncated_mminf_relationship(self, rho, mu, k):
        """M/M/k/k pmf equals the conditioned M/M/inf pmf."""
        lam = rho * mu  # bound the offered load so the Poisson tail
        # mass below k does not underflow to zero.
        bounded = MMkkQueue(arrival_rate=lam, service_rate=mu, capacity=k)
        unbounded = MMInfinityQueue(arrival_rate=lam, service_rate=mu)
        mass = unbounded.occupancy_cdf(k)
        for n in (0, k // 2, k):
            assert bounded.occupancy_pmf(n) == pytest.approx(
                unbounded.occupancy_pmf(n) / mass, rel=1e-6
            )
