"""Correctness of the content-addressed result cache."""

import pickle

import pytest

from repro.cli import main
from repro.runtime import ResultCache, run_simulation, use_runtime
from repro.sim.config import SimulationConfig
from repro.sim.simulator import SensorNetworkSimulator


def _config(**overrides):
    defaults = dict(interarrival=4.0, case="rcad", n_packets=40, seed=0)
    defaults.update(overrides)
    return SimulationConfig.paper_baseline(**defaults)


class TestResultCache:
    def test_hit_returns_stored_result_unchanged(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = _config()
        result = SensorNetworkSimulator(config).run()
        cache.put(config, result, elapsed=1.25)

        restored = cache.get(config)
        assert restored is not None
        assert [r.delivered_at for r in restored.records] == [
            r.delivered_at for r in result.records
        ]
        assert [r.created_at for r in restored.records] == [
            r.created_at for r in result.records
        ]
        assert cache.stats.hits == 1
        assert cache.stats.seconds_saved == 1.25

    def test_config_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = _config()
        cache.put(config, SensorNetworkSimulator(config).run(), elapsed=0.1)
        assert cache.get(_config(interarrival=6.0)) is None
        assert cache.get(_config(seed=7)) is None
        assert cache.stats.misses == 2

    def test_salt_change_misses(self, tmp_path):
        config = _config()
        old = ResultCache(tmp_path, salt="code-v1")
        old.put(config, SensorNetworkSimulator(config).run(), elapsed=0.1)
        new = ResultCache(tmp_path, salt="code-v2")
        assert new.get(config) is None

    def test_corrupted_entry_is_a_miss_not_a_crash(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = _config()
        cache.put(config, SensorNetworkSimulator(config).run(), elapsed=0.1)
        path = cache._path_for(cache.key_for(config))
        path.write_bytes(b"not a pickle")

        assert cache.get(config) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()  # the bad entry is out of the store
        # ... but preserved for inspection, not silently destroyed:
        assert (cache.quarantine_dir / path.name).read_bytes() == b"not a pickle"
        # a fresh put/get cycle works again
        cache.put(config, SensorNetworkSimulator(config).run(), elapsed=0.1)
        assert cache.get(config) is not None

    def test_wrong_shape_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = _config()
        path = cache._path_for(cache.key_for(config))
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps("just one string"))
        assert cache.get(config) is None
        assert cache.stats.corrupt == 1

    def test_bit_flip_is_caught_by_checksum(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = _config()
        cache.put(config, SensorNetworkSimulator(config).run(), elapsed=0.1)
        path = cache._path_for(cache.key_for(config))
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF  # one flipped byte mid-payload
        path.write_bytes(bytes(blob))

        assert cache.get(config) is None
        assert cache.stats.corrupt == 1
        assert (cache.quarantine_dir / path.name).exists()


class TestCacheMaintenance:
    def _populate(self, tmp_path, n=3):
        cache = ResultCache(tmp_path)
        result = SensorNetworkSimulator(_config()).run()
        for seed in range(n):
            cache.put(_config(seed=seed), result, elapsed=0.1)
        return cache

    def test_disk_stats_counts_entries_and_quarantine(self, tmp_path):
        cache = self._populate(tmp_path, n=3)
        stats = cache.disk_stats()
        assert stats.entries == 3
        assert stats.entry_bytes > 0
        assert stats.quarantined == 0

        # Corrupt one entry and read it: it moves to quarantine.
        victim_seed = 1
        victim = cache._path_for(cache.key_for(_config(seed=victim_seed)))
        victim.write_bytes(b"garbage")
        assert cache.get(_config(seed=victim_seed)) is None
        stats = cache.disk_stats()
        assert stats.entries == 2
        assert stats.quarantined == 1

    def test_verify_quarantines_corrupt_entries(self, tmp_path):
        cache = self._populate(tmp_path, n=3)
        victim = list(cache.iter_entry_paths())[1]
        victim.write_bytes(b"bit rot")

        report = cache.verify()
        assert report.checked == 3
        assert report.ok == 2
        assert report.quarantined == [victim.name]
        assert (cache.quarantine_dir / victim.name).exists()
        # A second verify pass is clean.
        second = cache.verify()
        assert second.checked == 2 and second.quarantined == []

    def test_purge_reclaims_everything(self, tmp_path):
        cache = self._populate(tmp_path, n=3)
        list(cache.iter_entry_paths())[0].write_bytes(b"bad")
        cache.verify()  # one entry quarantined

        removed, reclaimed = cache.purge()
        assert removed == 3  # 2 entries + 1 quarantined file
        assert reclaimed > 0
        assert cache.disk_stats().entries == 0
        assert cache.disk_stats().quarantined == 0

    def test_purge_can_keep_quarantine(self, tmp_path):
        cache = self._populate(tmp_path, n=2)
        list(cache.iter_entry_paths())[0].write_bytes(b"bad")
        cache.verify()
        cache.purge(include_quarantine=False)
        assert cache.disk_stats().entries == 0
        assert cache.disk_stats().quarantined == 1

    def test_prune_evicts_oldest_first(self, tmp_path):
        import os
        import time

        cache = self._populate(tmp_path, n=3)
        paths = list(cache.iter_entry_paths())
        # Make ages unambiguous regardless of write order.
        now = time.time()
        by_age = sorted(paths, key=str)
        for rank, path in enumerate(by_age):
            os.utime(path, (now - 100 + rank, now - 100 + rank))
        total = sum(p.stat().st_size for p in paths)
        one_size = paths[0].stat().st_size

        removed, reclaimed = cache.prune(max_bytes=total - 1)
        assert removed == 1
        assert reclaimed == one_size
        assert not by_age[0].exists()  # the oldest went first
        assert by_age[1].exists() and by_age[2].exists()

    def test_prune_rejects_negative_budget(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path).prune(-1)

    def test_prune_to_zero_clears_entries(self, tmp_path):
        cache = self._populate(tmp_path, n=2)
        removed, _ = cache.prune(0)
        assert removed == 2
        assert cache.disk_stats().entries == 0


class TestConcurrentWriters:
    """Satellite (ISSUE 7): two fabric workers computing the same cell
    must both land via atomic temp-file + rename with no torn entry."""

    def test_same_key_hammer_from_multiple_processes(self, tmp_path):
        import multiprocessing
        import time

        config = _config()
        result = SensorNetworkSimulator(config).run()
        expected = [r.delivered_at for r in result.records]
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(4)

        def hammer():
            cache = ResultCache(tmp_path)
            barrier.wait()  # all writers fire at once
            for _ in range(25):
                cache.put(config, result, elapsed=0.1)

        procs = [ctx.Process(target=hammer) for _ in range(4)]
        for p in procs:
            p.start()

        # Concurrent reader: every get during the storm must be a clean
        # hit (identical payload) or a miss -- never a torn entry.
        reader = ResultCache(tmp_path)
        deadline = time.time() + 60
        while any(p.is_alive() for p in procs) and time.time() < deadline:
            restored = reader.get(config)
            if restored is not None:
                assert [r.delivered_at for r in restored.records] == expected
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        assert reader.stats.corrupt == 0

        final = reader.get(config)
        assert final is not None
        assert [r.delivered_at for r in final.records] == expected
        assert len(list(reader.iter_entry_paths())) == 1  # one key, one file
        assert not list(tmp_path.rglob("*.tmp"))  # every temp was renamed

    def test_sigkilled_writer_cannot_tear_an_entry(self, tmp_path):
        import multiprocessing
        import os
        import signal
        import time

        config = _config()
        result = SensorNetworkSimulator(config).run()
        ctx = multiprocessing.get_context("fork")

        def write_forever():
            cache = ResultCache(tmp_path)
            while True:
                cache.put(config, result, elapsed=0.1)

        victim = ctx.Process(target=write_forever)
        victim.start()
        time.sleep(0.3)  # let it get mid-write with high probability
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=30)

        cache = ResultCache(tmp_path)
        restored = cache.get(config)  # a hit or a miss, never a crash
        if restored is not None:
            assert cache.stats.corrupt == 0
        report = cache.verify()
        assert report.quarantined == []  # no entry file is torn
        # Any abandoned temp file from the kill is swept once stale.
        assert cache.sweep_stale_tmp(max_age_seconds=0.0) >= 0
        assert not list(tmp_path.rglob("*.tmp"))

    def test_verify_sweeps_stale_tmp_files(self, tmp_path):
        import os
        import time

        cache = ResultCache(tmp_path)
        config = _config()
        cache.put(config, SensorNetworkSimulator(config).run(), elapsed=0.1)
        shard = next(cache.iter_entry_paths()).parent
        stale = shard / "abandoned.tmp"
        stale.write_bytes(b"half-written")
        old = time.time() - 7200
        os.utime(stale, (old, old))
        fresh = shard / "inflight.tmp"
        fresh.write_bytes(b"being written right now")

        report = cache.verify()
        assert report.stale_tmp_removed == 1
        assert not stale.exists()
        assert fresh.exists()  # young temps belong to live writers
        assert report.quarantined == []


class TestRunSimulationCaching:
    def test_warm_rerun_makes_zero_simulator_invocations(self, tmp_path):
        config = _config()
        with use_runtime(cache_dir=tmp_path) as cold:
            first = run_simulation(config)
        assert cold.stats.simulations == 1
        assert cold.cache.stats.stores == 1

        with use_runtime(cache_dir=tmp_path) as warm:
            second = run_simulation(config)
        assert warm.stats.simulations == 0
        assert warm.cache.stats.hits == 1
        assert [r.delivered_at for r in second.records] == [
            r.delivered_at for r in first.records
        ]

    def test_no_cache_context_never_touches_disk(self, tmp_path):
        config = _config()
        with use_runtime() as ctx:
            run_simulation(config)
        assert ctx.cache is None
        assert ctx.stats.simulations == 1
        assert list(tmp_path.iterdir()) == []


class TestCliCacheIntegration:
    def test_fig2_jobs4_warm_cache_zero_invocations(self, tmp_path, capsys):
        """Acceptance: a warm-cache rerun reruns no simulation at all."""
        argv = [
            "fig2", "--packets", "50", "--interarrivals", "2,20",
            "--jobs", "4", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "cache: 0 hits, 6 misses, 6 stored" in cold

        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "cache: 6 hits, 0 misses, 0 stored" in warm
        # identical tables modulo the cache-stats line
        def strip(text):
            return [
                line for line in text.splitlines()
                if not line.startswith("cache:")
            ]

        assert strip(cold) == strip(warm)

    def test_no_cache_flag_bypasses_reads_and_writes(self, tmp_path, capsys):
        argv = [
            "fig2", "--packets", "50", "--interarrivals", "20",
            "--no-cache", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache:" not in out
        assert list(tmp_path.iterdir()) == []
