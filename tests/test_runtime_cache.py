"""Correctness of the content-addressed result cache."""

import pickle

from repro.cli import main
from repro.runtime import ResultCache, run_simulation, use_runtime
from repro.sim.config import SimulationConfig
from repro.sim.simulator import SensorNetworkSimulator


def _config(**overrides):
    defaults = dict(interarrival=4.0, case="rcad", n_packets=40, seed=0)
    defaults.update(overrides)
    return SimulationConfig.paper_baseline(**defaults)


class TestResultCache:
    def test_hit_returns_stored_result_unchanged(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = _config()
        result = SensorNetworkSimulator(config).run()
        cache.put(config, result, elapsed=1.25)

        restored = cache.get(config)
        assert restored is not None
        assert [r.delivered_at for r in restored.records] == [
            r.delivered_at for r in result.records
        ]
        assert [r.created_at for r in restored.records] == [
            r.created_at for r in result.records
        ]
        assert cache.stats.hits == 1
        assert cache.stats.seconds_saved == 1.25

    def test_config_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = _config()
        cache.put(config, SensorNetworkSimulator(config).run(), elapsed=0.1)
        assert cache.get(_config(interarrival=6.0)) is None
        assert cache.get(_config(seed=7)) is None
        assert cache.stats.misses == 2

    def test_salt_change_misses(self, tmp_path):
        config = _config()
        old = ResultCache(tmp_path, salt="code-v1")
        old.put(config, SensorNetworkSimulator(config).run(), elapsed=0.1)
        new = ResultCache(tmp_path, salt="code-v2")
        assert new.get(config) is None

    def test_corrupted_entry_is_a_miss_not_a_crash(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = _config()
        cache.put(config, SensorNetworkSimulator(config).run(), elapsed=0.1)
        path = cache._path_for(cache.key_for(config))
        path.write_bytes(b"not a pickle")

        assert cache.get(config) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()  # the bad entry is purged
        # a fresh put/get cycle works again
        cache.put(config, SensorNetworkSimulator(config).run(), elapsed=0.1)
        assert cache.get(config) is not None

    def test_wrong_shape_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = _config()
        path = cache._path_for(cache.key_for(config))
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps("just one string"))
        assert cache.get(config) is None
        assert cache.stats.corrupt == 1


class TestRunSimulationCaching:
    def test_warm_rerun_makes_zero_simulator_invocations(self, tmp_path):
        config = _config()
        with use_runtime(cache_dir=tmp_path) as cold:
            first = run_simulation(config)
        assert cold.stats.simulations == 1
        assert cold.cache.stats.stores == 1

        with use_runtime(cache_dir=tmp_path) as warm:
            second = run_simulation(config)
        assert warm.stats.simulations == 0
        assert warm.cache.stats.hits == 1
        assert [r.delivered_at for r in second.records] == [
            r.delivered_at for r in first.records
        ]

    def test_no_cache_context_never_touches_disk(self, tmp_path):
        config = _config()
        with use_runtime() as ctx:
            run_simulation(config)
        assert ctx.cache is None
        assert ctx.stats.simulations == 1
        assert list(tmp_path.iterdir()) == []


class TestCliCacheIntegration:
    def test_fig2_jobs4_warm_cache_zero_invocations(self, tmp_path, capsys):
        """Acceptance: a warm-cache rerun reruns no simulation at all."""
        argv = [
            "fig2", "--packets", "50", "--interarrivals", "2,20",
            "--jobs", "4", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "cache: 0 hits, 6 misses, 6 stored" in cold

        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "cache: 6 hits, 0 misses, 0 stored" in warm
        # identical tables modulo the cache-stats line
        def strip(text):
            return [
                line for line in text.splitlines()
                if not line.startswith("cache:")
            ]

        assert strip(cold) == strip(warm)

    def test_no_cache_flag_bypasses_reads_and_writes(self, tmp_path, capsys):
        argv = [
            "fig2", "--packets", "50", "--interarrivals", "20",
            "--no-cache", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache:" not in out
        assert list(tmp_path.iterdir()) == []
