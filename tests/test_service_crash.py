"""Crash-safety test: SIGTERM the service mid-stream, restart it from
the snapshot, and prove that no admitted event was lost and none was
released ahead of its schedule.

This drives the real CLI in a subprocess -- the exact code path an
operator's process manager exercises -- rather than in-process tasks.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _serve(extra_args, **popen_kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "-1", *extra_args],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        **popen_kwargs,
    )


def _wait_for_line(proc, needle, timeout=30.0):
    deadline = time.monotonic() + timeout
    lines = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            pytest.fail(
                f"service exited before {needle!r}; output so far:\n"
                + "".join(lines)
            )
        lines.append(line)
        if needle in line:
            return lines
    pytest.fail(f"timed out waiting for {needle!r}")


class TestSigtermZeroLoss:
    def test_sigterm_restart_loses_no_admitted_event(self, tmp_path):
        snap = tmp_path / "svc.snap"
        report1 = tmp_path / "run1.json"
        report2 = tmp_path / "run2.json"
        common = [
            "--shards", "4", "--capacity", "512", "--max-buffered", "4096",
            "--mean-delay", "0.5", "--flows", "8", "--seed", "7",
            "--snapshot", str(snap),
        ]

        # --- run 1: SIGTERM mid-stream -------------------------------
        proc = _serve(
            [*common, "--events", "100000", "--rate", "600",
             "--report", str(report1)]
        )
        try:
            _wait_for_line(proc, "service up")
            time.sleep(0.8)  # let a few hundred events in, some released
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0, out
        assert "SIGTERM: persisted" in out
        assert snap.is_file(), "SIGTERM must leave a snapshot behind"

        run1 = json.loads(report1.read_text())
        admitted1 = run1["outcomes"].get("admitted", 0) + run1["outcomes"].get(
            "admitted-preempt", 0
        )
        assert admitted1 > 50, "SIGTERM arrived before any real load"
        assert run1["outcomes"].get("shed", 0) == 0, "sized to never shed"
        released1 = {(r["flow_id"], r["seq"]) for r in run1["releases"]}
        # Conservation inside run 1: everything admitted was either
        # released or persisted in the snapshot.
        assert run1["persisted"] == admitted1 - len(released1)
        assert run1["persisted"] > 0, "SIGTERM should catch events in flight"

        # --- run 2: restore and drain, no new load -------------------
        proc = _serve(
            [*common, "--events", "0", "--report", str(report2)]
        )
        out2, _ = proc.communicate(timeout=120)
        assert proc.returncode == 0, out2
        assert f"restored {run1['persisted']} buffered events" in out2
        assert not snap.exists(), "a restored snapshot must be consumed"

        run2 = json.loads(report2.read_text())
        restored = {tuple(pair) for pair in run2["restored"]}
        released2 = {(r["flow_id"], r["seq"]) for r in run2["releases"]}

        # Zero admitted-event loss across the crash: the releases of
        # both runs partition exactly the events run 1 admitted (the
        # generator assigns flow i%flows / seq i//flows in order).
        submitted1 = run1["submitted"]
        expected = {(i % 8, i // 8) for i in range(submitted1)}
        assert released1 | released2 == expected
        assert not released1 & released2, "an event was released twice"
        assert released2 == restored

        # No early release: every non-preempted event left at or after
        # its originally scheduled release time, in both processes.
        for run in (run1, run2):
            for r in run["releases"]:
                assert not r["early"]
                assert r["released_at"] >= r["release_time"] - 1e-6
