"""Unit tests for the empirical mutual-information estimators."""

import numpy as np
import pytest

from repro.infotheory.entropy import gaussian_mutual_information
from repro.infotheory.estimators import (
    binned_mutual_information,
    gaussian_mi_estimate,
    ksg_mutual_information,
)

N = 4000


def _gaussian_pair(rho, rng, n=N):
    x = rng.standard_normal(n)
    noise = rng.standard_normal(n)
    z = rho * x + np.sqrt(1 - rho**2) * noise
    return x, z


class TestIndependentData:
    def test_binned_near_zero(self, rng):
        x, z = rng.standard_normal(N), rng.standard_normal(N)
        assert binned_mutual_information(x, z) < 0.05

    def test_ksg_near_zero(self, rng):
        x, z = rng.standard_normal(N), rng.standard_normal(N)
        assert ksg_mutual_information(x, z) < 0.05

    def test_gaussian_near_zero(self, rng):
        x, z = rng.standard_normal(N), rng.standard_normal(N)
        assert gaussian_mi_estimate(x, z) < 0.05


class TestCorrelatedGaussians:
    @pytest.mark.parametrize("rho", [0.3, 0.6, 0.9])
    def test_ksg_matches_closed_form(self, rho, rng):
        x, z = _gaussian_pair(rho, rng)
        truth = -0.5 * np.log(1 - rho**2)
        assert ksg_mutual_information(x, z) == pytest.approx(truth, abs=0.1)

    @pytest.mark.parametrize("rho", [0.3, 0.6, 0.9])
    def test_gaussian_estimator_matches_closed_form(self, rho, rng):
        x, z = _gaussian_pair(rho, rng)
        truth = -0.5 * np.log(1 - rho**2)
        assert gaussian_mi_estimate(x, z) == pytest.approx(truth, abs=0.08)

    def test_binned_tracks_closed_form(self, rng):
        x, z = _gaussian_pair(0.8, rng, n=8000)
        truth = -0.5 * np.log(1 - 0.64)
        assert binned_mutual_information(x, z) == pytest.approx(truth, abs=0.15)

    def test_additive_channel_matches_gaussian_formula(self, rng):
        """The paper's Z = X + Y channel with Gaussian X, Y."""
        x = rng.normal(0.0, 3.0, size=N)
        y = rng.normal(0.0, 2.0, size=N)
        truth = gaussian_mutual_information(9.0, 4.0)
        assert ksg_mutual_information(x, x + y) == pytest.approx(truth, abs=0.12)


class TestDeterministicAndDegenerate:
    def test_deterministic_relationship_large_mi(self, rng):
        x = rng.standard_normal(N)
        assert ksg_mutual_information(x, 2.0 * x + 1.0) > 2.0
        assert gaussian_mi_estimate(x, 2.0 * x) > 5.0

    def test_constant_marginal_binned_zero(self, rng):
        x = rng.standard_normal(100)
        z = np.zeros(100)
        assert binned_mutual_information(x, z) == 0.0

    def test_constant_marginal_gaussian_zero(self, rng):
        x = rng.standard_normal(100)
        assert gaussian_mi_estimate(x, np.zeros(100)) == 0.0


class TestEstimatorContracts:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            binned_mutual_information(np.zeros(10), np.zeros(11))
        with pytest.raises(ValueError):
            ksg_mutual_information(np.zeros(10), np.zeros(11))
        with pytest.raises(ValueError):
            gaussian_mi_estimate(np.zeros(10), np.zeros(11))

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            binned_mutual_information(np.zeros(2), np.zeros(2))
        with pytest.raises(ValueError):
            ksg_mutual_information(np.arange(4.0), np.arange(4.0))

    def test_ksg_k_validation(self, rng):
        x = rng.standard_normal(20)
        with pytest.raises(ValueError):
            ksg_mutual_information(x, x, k=0)
        with pytest.raises(ValueError):
            ksg_mutual_information(x, x, k=20)

    def test_estimates_nonnegative(self, rng):
        x, z = rng.standard_normal(500), rng.standard_normal(500)
        assert binned_mutual_information(x, z) >= 0.0
        assert ksg_mutual_information(x, z) >= 0.0
        assert gaussian_mi_estimate(x, z) >= 0.0

    def test_binned_custom_bins(self, rng):
        x, z = _gaussian_pair(0.7, rng)
        wide = binned_mutual_information(x, z, bins=5)
        assert wide > 0.1

    def test_ksg_deterministic_given_inputs(self, rng):
        x, z = _gaussian_pair(0.5, rng, n=500)
        assert ksg_mutual_information(x, z) == ksg_mutual_information(x, z)


class TestMonotonicity:
    def test_leakage_grows_with_correlation(self, rng):
        estimates = []
        for rho in (0.2, 0.5, 0.8, 0.95):
            x, z = _gaussian_pair(rho, rng)
            estimates.append(ksg_mutual_information(x, z))
        assert estimates == sorted(estimates)

    def test_longer_delays_leak_less(self, rng):
        """The paper's core trade-off, measured by the estimator."""
        x = rng.exponential(10.0, size=N)  # creation-gap-like prior
        leakages = []
        for mean_delay in (1.0, 10.0, 100.0):
            z = x + rng.exponential(mean_delay, size=N)
            leakages.append(ksg_mutual_information(x, z))
        assert leakages == sorted(leakages, reverse=True)
