"""Unit tests for the MI/MMSE relationship and the MSE metric."""

import math

import numpy as np
import pytest

from repro.infotheory.entropy import gaussian_entropy, gaussian_mutual_information
from repro.infotheory.mmse import mmse_lower_bound_from_mi, mse_of_estimator


class TestMmseLowerBound:
    def test_gaussian_case_is_achievable(self):
        """For the Gaussian channel the bound equals the true MMSE."""
        sx2, sy2 = 4.0, 1.0
        mi = gaussian_mutual_information(sx2, sy2)
        bound = mmse_lower_bound_from_mi(gaussian_entropy(sx2), mi)
        true_mmse = sx2 * sy2 / (sx2 + sy2)  # Gaussian conditional variance
        assert bound == pytest.approx(true_mmse, rel=1e-9)

    def test_zero_leakage_bound_is_prior_variance(self):
        sx2 = 9.0
        bound = mmse_lower_bound_from_mi(gaussian_entropy(sx2), 0.0)
        assert bound == pytest.approx(sx2, rel=1e-9)

    def test_each_nat_shrinks_bound_by_e_squared(self):
        h = gaussian_entropy(1.0)
        assert mmse_lower_bound_from_mi(h, 1.0) == pytest.approx(
            mmse_lower_bound_from_mi(h, 0.0) / math.e**2
        )

    def test_more_leakage_smaller_floor(self):
        h = gaussian_entropy(2.0)
        assert mmse_lower_bound_from_mi(h, 2.0) < mmse_lower_bound_from_mi(h, 0.5)

    def test_negative_mi_rejected(self):
        with pytest.raises(ValueError):
            mmse_lower_bound_from_mi(1.0, -0.1)

    def test_bound_holds_for_simulated_estimator(self, rng):
        """An actual (linear) estimator's MSE must sit above the bound."""
        sx2, sy2 = 4.0, 2.0
        x = rng.normal(0.0, math.sqrt(sx2), size=20_000)
        z = x + rng.normal(0.0, math.sqrt(sy2), size=20_000)
        estimate = (sx2 / (sx2 + sy2)) * z  # the optimal linear estimator
        mse = mse_of_estimator(x, estimate)
        bound = mmse_lower_bound_from_mi(
            gaussian_entropy(sx2), gaussian_mutual_information(sx2, sy2)
        )
        assert mse >= bound * 0.95  # sampling slack


class TestMseOfEstimator:
    def test_exact_value(self):
        # ((1)^2 + (2)^2) / 2 = 2.5 -- the paper's MSE definition.
        assert mse_of_estimator([0.0, 0.0], [1.0, 2.0]) == pytest.approx(2.5)

    def test_perfect_estimates_zero(self):
        assert mse_of_estimator([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0

    def test_symmetric_in_sign(self):
        assert mse_of_estimator([0.0], [3.0]) == mse_of_estimator([0.0], [-3.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mse_of_estimator([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mse_of_estimator([], [])

    def test_accepts_numpy_arrays(self):
        truth = np.array([1.0, 2.0])
        guess = np.array([2.0, 4.0])
        assert mse_of_estimator(truth, guess) == pytest.approx(2.5)
