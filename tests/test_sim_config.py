"""Unit tests for simulation configuration."""

import pytest

from repro.core.victim import LongestRemainingDelay
from repro.sim.config import BufferSpec, FlowSpec, SimulationConfig
from repro.traffic.generators import PeriodicTraffic


class TestBufferSpec:
    def test_infinite_default(self):
        spec = BufferSpec()
        assert spec.kind == "infinite"
        assert spec.capacity is None

    def test_bounded_kinds_need_capacity(self):
        with pytest.raises(ValueError):
            BufferSpec(kind="rcad")
        with pytest.raises(ValueError):
            BufferSpec(kind="drop-tail", capacity=0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            BufferSpec(kind="magic")  # type: ignore[arg-type]

    def test_victim_policy_only_for_rcad(self):
        with pytest.raises(ValueError):
            BufferSpec(kind="infinite", victim_policy=LongestRemainingDelay())
        spec = BufferSpec(kind="rcad", capacity=5, victim_policy=LongestRemainingDelay())
        assert spec.victim_policy is not None


class TestFlowSpec:
    def test_needs_packets(self):
        with pytest.raises(ValueError):
            FlowSpec(flow_id=1, source=0, traffic=PeriodicTraffic(1.0), n_packets=0)


class TestPaperBaseline:
    def test_no_delay_case(self):
        config = SimulationConfig.paper_baseline(interarrival=2.0, case="no-delay")
        assert config.delay_plan is None
        assert config.buffers.kind == "infinite"
        assert len(config.flows) == 4
        assert all(flow.n_packets == 1000 for flow in config.flows)

    def test_unlimited_case(self):
        config = SimulationConfig.paper_baseline(interarrival=2.0, case="unlimited")
        assert config.delay_plan is not None
        assert config.buffers.kind == "infinite"

    def test_rcad_case(self):
        config = SimulationConfig.paper_baseline(interarrival=2.0, case="rcad")
        assert config.buffers.kind == "rcad"
        assert config.buffers.capacity == 10

    def test_delay_plan_mean(self):
        config = SimulationConfig.paper_baseline(interarrival=4.0, case="rcad")
        some_node = config.flows[0].source
        assert config.delay_plan.distribution_for(some_node).mean == pytest.approx(30.0)

    def test_flow_sources_are_paper_labels(self):
        config = SimulationConfig.paper_baseline(interarrival=2.0, case="rcad")
        expected = {
            config.deployment.node_for_label(label)
            for label in ("S1", "S2", "S3", "S4")
        }
        assert {flow.source for flow in config.flows} == expected

    def test_phases_staggered(self):
        config = SimulationConfig.paper_baseline(interarrival=4.0, case="no-delay")
        phases = {flow.traffic.phase for flow in config.flows}
        assert len(phases) == 4

    def test_unknown_case_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig.paper_baseline(interarrival=2.0, case="bogus")  # type: ignore[arg-type]

    def test_nonpositive_interarrival_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig.paper_baseline(interarrival=0.0)

    def test_with_seed_copies(self):
        config = SimulationConfig.paper_baseline(interarrival=2.0, case="rcad", seed=1)
        other = config.with_seed(2)
        assert other.seed == 2
        assert config.seed == 1
        assert other.flows == config.flows


class TestConfigValidation:
    def _base(self, **overrides):
        config = SimulationConfig.paper_baseline(interarrival=2.0, case="no-delay")
        defaults = dict(
            deployment=config.deployment,
            tree=config.tree,
            flows=config.flows,
            delay_plan=None,
        )
        defaults.update(overrides)
        return defaults

    def test_duplicate_flow_ids_rejected(self):
        args = self._base()
        args["flows"] = [args["flows"][0], args["flows"][0]]
        with pytest.raises(ValueError):
            SimulationConfig(**args)

    def test_empty_flows_rejected(self):
        args = self._base(flows=[])
        with pytest.raises(ValueError):
            SimulationConfig(**args)

    def test_undeployed_source_rejected(self):
        args = self._base()
        args["flows"] = [
            FlowSpec(flow_id=1, source=9999, traffic=PeriodicTraffic(1.0), n_packets=1)
        ]
        with pytest.raises(ValueError):
            SimulationConfig(**args)

    def test_sink_as_source_rejected(self):
        args = self._base()
        args["flows"] = [
            FlowSpec(flow_id=1, source=0, traffic=PeriodicTraffic(1.0), n_packets=1)
        ]
        with pytest.raises(ValueError):
            SimulationConfig(**args)

    def test_negative_transmission_delay_rejected(self):
        args = self._base(transmission_delay=-1.0)
        with pytest.raises(ValueError):
            SimulationConfig(**args)
