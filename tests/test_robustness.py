"""Tests for the robustness experiments and lossy-link simulation."""

import pytest

from repro.experiments.robustness import figure2_replicated, link_loss_robustness
from repro.sim.config import SimulationConfig
from repro.sim.simulator import SensorNetworkSimulator


class TestLossySimulation:
    def _run(self, loss, n_packets=150, seed=4):
        config = SimulationConfig.paper_baseline(
            interarrival=4.0, case="rcad", n_packets=n_packets, seed=seed
        )
        config.link_loss_probability = loss
        return SensorNetworkSimulator(config).run()

    def test_zero_loss_delivers_everything(self):
        result = self._run(0.0)
        assert result.lost_in_transit == 0
        assert result.delivered_count() == 4 * 150

    def test_loss_reduces_delivery(self):
        result = self._run(0.05)
        assert result.lost_in_transit > 0
        assert result.delivered_count() < 4 * 150
        assert (
            result.delivered_count() + result.lost_in_transit == 4 * 150
        )  # conservation: every packet delivered or lost on the air

    def test_longer_paths_lose_more(self):
        """S2 (22 hops) survives less often than S3 (9 hops)."""
        result = self._run(0.05, n_packets=300)
        s2_rate = result.delivered_count(2) / 300
        s3_rate = result.delivered_count(3) / 300
        assert s3_rate > s2_rate

    def test_survival_matches_bernoulli_expectation(self):
        """15-hop flow at loss p: delivery ~ (1-p)^15."""
        result = self._run(0.05, n_packets=400)
        expected = (1 - 0.05) ** 15
        assert result.delivered_count(1) / 400 == pytest.approx(expected, abs=0.08)

    def test_loss_probability_validated(self):
        import dataclasses

        config = SimulationConfig.paper_baseline(interarrival=4.0, case="rcad")
        with pytest.raises(ValueError):
            dataclasses.replace(config, link_loss_probability=1.5)

    def test_certain_loss_delivers_nothing(self):
        """The closed endpoint p = 1.0 is a crash-equivalent link."""
        result = self._run(1.0, n_packets=30)
        assert result.delivered_count() == 0
        assert result.lost_in_transit == 4 * 30


class TestLinkLossRobustness:
    def test_privacy_erodes_with_loss(self):
        rows = link_loss_robustness(
            loss_probabilities=(0.0, 0.1), n_packets=200, seed=5
        )
        lossless, lossy = rows
        assert lossless.delivered_fraction == pytest.approx(1.0)
        assert lossy.delivered_fraction < 0.5
        # Fewer packets reach the trunk -> fewer preemptions -> delays
        # drift back toward the advertised law -> adversary improves.
        assert lossy.preemptions < lossless.preemptions
        assert lossy.mse < lossless.mse

    def test_rows_aligned_with_sweep(self):
        sweep = (0.0, 0.02, 0.05)
        rows = link_loss_robustness(
            loss_probabilities=sweep, n_packets=120, seed=6
        )
        assert tuple(row.loss_probability for row in rows) == sweep


class TestFigure2Replicated:
    def test_cases_separate_beyond_confidence_intervals(self):
        cells = figure2_replicated(
            n_replications=3, n_packets=150, base_seed=40
        )
        by_case = {cell.case: cell for cell in cells}
        rcad = by_case["rcad"]
        unlimited = by_case["unlimited"]
        # The headline gap is far wider than either interval.
        assert rcad.mse.ci_low > unlimited.mse.ci_high
        assert rcad.latency.ci_high < unlimited.latency.ci_low

    def test_stats_have_requested_replications(self):
        cells = figure2_replicated(n_replications=3, n_packets=100, base_seed=60)
        assert all(cell.mse.n == 3 for cell in cells)

    def test_validation(self):
        with pytest.raises(ValueError):
            figure2_replicated(n_replications=1, n_packets=50)
