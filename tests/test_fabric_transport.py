"""Networked fabric end-to-end: TCP workers, chaos, degradation ladder.

The acceptance property (ISSUE 9): a sweep run over TCP through the
chaos proxy -- drops, duplicates, a mid-run partition -- merges
bit-identical to the serial executor, and losing the coordinator's
listener mid-run degrades to shared-directory or serial completion
with zero lost cells.
"""

import json
import socket
import threading
import time

import pytest

from repro.runtime.chaosnet import ChaosProxy, NetFaultPlan, PartitionWindow
from repro.runtime.executors import SerialExecutor
from repro.runtime.fabric import (
    FabricConfig,
    FabricError,
    FabricWorker,
    ResultsScanner,
    run_fabric,
    write_grid,
)
from repro.runtime.transport import (
    Backoff,
    FabricEndpoint,
    TransportClient,
)


def _cube(x):
    return x**3


def _free_port():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _grid(tmp_path, items, lease_ttl=60.0):
    config = FabricConfig(workers=0, lease_ttl=lease_ttl)
    write_grid(tmp_path, "sweep-net", "test", list(items), None, config)


def _merge(tmp_path, n):
    scanner = ResultsScanner(tmp_path, n)
    scanner.scan()
    return [scanner.cells.get(i) for i in range(n)]


class TestNetworkedWorker:
    def test_tcp_worker_matches_serial_bit_for_bit(self, tmp_path):
        items = list(range(8))
        _grid(tmp_path, items)
        endpoint = FabricEndpoint(tmp_path)
        port = endpoint.start()
        try:
            worker = FabricWorker(
                fn=_cube,
                connect=f"127.0.0.1:{port}",
                worker_id="net0",
                max_retry_elapsed=10.0,
            )
            assert worker.run() == len(items)
            assert worker.transport_degraded is False
        finally:
            endpoint.stop()
        assert _merge(tmp_path, len(items)) == SerialExecutor().map(_cube, items)

    def test_worker_heartbeats_count_as_external_liveness(self, tmp_path):
        _grid(tmp_path, range(3))
        endpoint = FabricEndpoint(tmp_path)
        port = endpoint.start()
        try:
            client = TransportClient(
                ("127.0.0.1", port), "nethb", max_retry_elapsed=5.0
            )
            client.call("heartbeat", cells_done=0)
            client.close()
            payload = json.loads(
                (tmp_path / "workers" / "nethb.json").read_text()
            )
            assert payload["via"] == "tcp"
            assert payload["pid"] is None
            from repro.runtime.fabric import _any_external_heartbeat

            assert _any_external_heartbeat(tmp_path, []) is True
        finally:
            endpoint.stop()

    def test_chaos_run_matches_serial_bit_for_bit(self, tmp_path):
        """Drops + duplicates + mid-frame resets + one full partition:
        the merged grid is still byte-identical to serial."""
        items = list(range(9))
        _grid(tmp_path, items)
        endpoint = FabricEndpoint(tmp_path)
        port = endpoint.start()
        proxy = ChaosProxy(
            "127.0.0.1",
            port,
            NetFaultPlan(
                drop_probability=0.10,
                duplicate_probability=0.10,
                reset_probability=0.05,
                partitions=(PartitionWindow(start=0.5, duration=0.8),),
                seed=3,
            ),
        )
        chaos_port = proxy.start()
        try:
            client = TransportClient(
                ("127.0.0.1", chaos_port),
                "net0",
                call_timeout=0.5,
                max_retry_elapsed=60.0,
                backoff=Backoff(base=0.01, cap=0.1),
            )
            worker = FabricWorker(fn=_cube, transport_client=client)
            assert worker.run() == len(items)
            # The chaos plan actually fired.
            assert (
                proxy.stats.frames_dropped
                + proxy.stats.frames_duplicated
                + proxy.stats.resets
            ) > 0
            assert client.stats.retransmitted_frames > 0
        finally:
            proxy.stop()
            endpoint.stop()
        assert _merge(tmp_path, len(items)) == SerialExecutor().map(_cube, items)

    def test_duplicate_uploads_replayed_twice_merge_identically(self, tmp_path):
        """Satellite: every journal upload delivered twice end-to-end
        still merges bit-identical to serial (dedup by worker/index/sha
        at the endpoint, by item index at merge time)."""
        items = list(range(6))
        _grid(tmp_path, items)
        endpoint = FabricEndpoint(tmp_path)
        port = endpoint.start()
        try:
            client = TransportClient(
                ("127.0.0.1", port), "net0", max_retry_elapsed=10.0
            )

            original_call = client.call

            def duplicating_call(op, **kwargs):
                response = original_call(op, **kwargs)
                if op == "upload":
                    replay = original_call(op, **kwargs)
                    assert replay["deduped"] is True
                return response

            client.call = duplicating_call
            worker = FabricWorker(fn=_cube, transport_client=client)
            assert worker.run() == len(items)
            assert endpoint.stats.uploads_deduped == len(items)
        finally:
            endpoint.stop()
        assert _merge(tmp_path, len(items)) == SerialExecutor().map(_cube, items)
        journal = (tmp_path / "results" / "net0.jsonl").read_text()
        assert journal.count('"kind": "cell"') == len(items)


def _slow_cube(x):
    time.sleep(0.2)
    return x**3


class TestDegradationLadder:
    def test_endpoint_loss_falls_back_to_shared_directory(self, tmp_path):
        """Kill the listener mid-run: a worker with the directory
        mounted continues there; zero cells are lost."""
        items = list(range(6))
        _grid(tmp_path, items)
        endpoint = FabricEndpoint(tmp_path)
        port = endpoint.start()
        client = TransportClient(
            ("127.0.0.1", port),
            "net0",
            call_timeout=0.5,
            max_retry_elapsed=1.5,
            backoff=Backoff(base=0.01, cap=0.05),
        )
        worker = FabricWorker(tmp_path, fn=_slow_cube, transport_client=client)
        killer = threading.Timer(0.5, endpoint.stop)
        killer.start()
        try:
            assert worker.run() == len(items)
        finally:
            killer.cancel()
            endpoint.stop()
        assert worker.transport_degraded is True
        assert _merge(tmp_path, len(items)) == SerialExecutor().map(
            _slow_cube, items
        )

    def test_endpoint_loss_without_directory_abandons_clearly(self, tmp_path):
        items = list(range(6))
        _grid(tmp_path, items)
        endpoint = FabricEndpoint(tmp_path)
        port = endpoint.start()
        client = TransportClient(
            ("127.0.0.1", port),
            "net0",
            call_timeout=0.5,
            max_retry_elapsed=1.0,
            backoff=Backoff(base=0.01, cap=0.05),
        )
        worker = FabricWorker(fn=_slow_cube, transport_client=client)
        threading.Timer(0.3, endpoint.stop).start()
        with pytest.raises(FabricError, match="no shared fabric directory"):
            worker.run()
        assert worker.transport_degraded is True

    def test_wrong_sweep_in_fallback_directory_is_rejected(self, tmp_path):
        net_dir = tmp_path / "net"
        other_dir = tmp_path / "other"
        _grid(net_dir, range(4))
        config = FabricConfig(workers=0, lease_ttl=60.0)
        write_grid(
            other_dir, "different-sweep", "test", list(range(4)), None, config
        )
        endpoint = FabricEndpoint(net_dir)
        port = endpoint.start()
        client = TransportClient(
            ("127.0.0.1", port),
            "net0",
            call_timeout=0.5,
            max_retry_elapsed=1.0,
            backoff=Backoff(base=0.01, cap=0.05),
        )
        worker = FabricWorker(
            other_dir, fn=_slow_cube, transport_client=client
        )
        threading.Timer(0.3, endpoint.stop).start()
        with pytest.raises(FabricError, match="different sweep"):
            worker.run()

    def test_version_mismatch_is_rejected_at_hello(self, tmp_path):
        _grid(tmp_path, range(3))
        endpoint = FabricEndpoint(tmp_path)
        port = endpoint.start()
        try:
            client = TransportClient(
                ("127.0.0.1", port), "net0", max_retry_elapsed=5.0
            )
            original_call = client.call

            def skewed_call(op, **kwargs):
                response = original_call(op, **kwargs)
                if op == "hello":
                    response["version"] = 999
                return response

            client.call = skewed_call
            with pytest.raises(FabricError, match="transport.*version|version"):
                FabricWorker(fn=_cube, transport_client=client)
        finally:
            endpoint.stop()


class TestCoordinatorEndpoint:
    def test_run_fabric_serves_tcp_workers(self, tmp_path):
        items = list(range(8))
        port = _free_port()
        config = FabricConfig(
            workers=0,
            lease_ttl=15.0,
            poll_interval=0.05,
            fabric_dir=tmp_path / "fab",
            listen=f"127.0.0.1:{port}",
        )
        computed = {}

        def join():
            # Give run_fabric a moment to bind the endpoint.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                try:
                    worker = FabricWorker(
                        fn=_cube,
                        connect=f"127.0.0.1:{port}",
                        worker_id="ext0",
                        max_retry_elapsed=5.0,
                    )
                    break
                except Exception:
                    time.sleep(0.05)
            else:  # pragma: no cover - endpoint never came up
                return
            computed["n"] = worker.run()

        thread = threading.Thread(target=join)
        thread.start()
        try:
            results, report = run_fabric(
                _cube, items, config=config, label="net-e2e"
            )
        finally:
            thread.join(timeout=30.0)
        assert results == SerialExecutor().map(_cube, items)
        assert computed.get("n") == len(items)
        assert report.endpoint == f"127.0.0.1:{port}"
        assert report.transport["uploads"] == len(items)
        assert report.transport["connections"] >= 1
        assert "client_reconnects" in report.transport
        assert f"endpoint 127.0.0.1:{port}" in report.render()

    def test_listen_port_conflict_is_a_fabric_error(self, tmp_path):
        blocker = socket.socket()
        blocker.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            config = FabricConfig(
                workers=0,
                lease_ttl=1.0,
                fabric_dir=tmp_path / "fab",
                listen=f"127.0.0.1:{port}",
            )
            with pytest.raises(FabricError, match="cannot listen"):
                run_fabric(_cube, list(range(3)), config=config, label="conflict")
        finally:
            blocker.close()

    def test_completed_grid_skips_the_endpoint(self, tmp_path):
        """Rerunning a finished sweep must not bind a socket at all."""
        items = list(range(4))
        fabric_dir = tmp_path / "fab"
        config = FabricConfig(
            workers=0, lease_ttl=1.0, poll_interval=0.05, fabric_dir=fabric_dir
        )
        results, _ = run_fabric(_cube, items, config=config, label="pre")
        assert results == SerialExecutor().map(_cube, items)
        # Same sweep again, now with a listen endpoint on a port that
        # is deliberately already taken: no bind may be attempted.
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            config2 = FabricConfig(
                workers=0,
                lease_ttl=1.0,
                poll_interval=0.05,
                fabric_dir=fabric_dir,
                listen=f"127.0.0.1:{port}",
            )
            results2, report2 = run_fabric(
                _cube, items, config=config2, label="pre"
            )
        finally:
            blocker.close()
        assert results2 == results
        assert report2.endpoint is None
        assert report2.resumed == len(items)

    def test_config_validates_listen_endpoint_eagerly(self, tmp_path):
        with pytest.raises(ValueError, match="host:port"):
            FabricConfig(listen="not-an-endpoint")
