"""Unit tests for CTR mode and CBC-MAC."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.mac import CbcMac
from repro.crypto.modes import CtrCipher, ctr_keystream
from repro.crypto.speck import Speck64_128

KEY = bytes(range(16))


class TestCtrKeystream:
    def test_length_exact(self):
        cipher = Speck64_128(KEY)
        for length in (0, 1, 7, 8, 9, 64, 65):
            assert len(ctr_keystream(cipher, nonce=0, length=length)) == length

    def test_deterministic(self):
        cipher = Speck64_128(KEY)
        assert ctr_keystream(cipher, 5, 32) == ctr_keystream(cipher, 5, 32)

    def test_nonce_changes_stream(self):
        cipher = Speck64_128(KEY)
        assert ctr_keystream(cipher, 1, 32) != ctr_keystream(cipher, 2, 32)

    def test_prefix_property(self):
        """A shorter request is a prefix of a longer one (same nonce)."""
        cipher = Speck64_128(KEY)
        long = ctr_keystream(cipher, 9, 64)
        short = ctr_keystream(cipher, 9, 20)
        assert long[:20] == short

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            ctr_keystream(Speck64_128(KEY), 0, -1)

    def test_nonce_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ctr_keystream(Speck64_128(KEY), 2**32, 8)
        with pytest.raises(ValueError):
            ctr_keystream(Speck64_128(KEY), -1, 8)


class TestCtrCipher:
    def test_roundtrip(self):
        ctr = CtrCipher(KEY)
        message = b"sensor reading @ t=17.25, seq=3"
        assert ctr.decrypt(ctr.encrypt(message, nonce=3), nonce=3) == message

    def test_wrong_nonce_garbles(self):
        ctr = CtrCipher(KEY)
        message = b"confidential"
        assert ctr.decrypt(ctr.encrypt(message, nonce=1), nonce=2) != message

    def test_ciphertext_differs_from_plaintext(self):
        ctr = CtrCipher(KEY)
        message = b"plaintext bytes!"
        assert ctr.encrypt(message, nonce=0) != message

    def test_empty_message(self):
        ctr = CtrCipher(KEY)
        assert ctr.encrypt(b"", nonce=0) == b""

    @given(st.binary(max_size=100), st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip_property(self, message, nonce):
        ctr = CtrCipher(KEY)
        assert ctr.decrypt(ctr.encrypt(message, nonce), nonce) == message


class TestCbcMac:
    def test_verify_accepts_genuine_tag(self):
        mac = CbcMac(KEY)
        assert mac.verify(b"hello sensors", mac.tag(b"hello sensors"))

    def test_verify_rejects_tampered_message(self):
        mac = CbcMac(KEY)
        tag = mac.tag(b"hello sensors")
        assert not mac.verify(b"hello sensorz", tag)

    def test_verify_rejects_tampered_tag(self):
        mac = CbcMac(KEY)
        tag = bytearray(mac.tag(b"hello"))
        tag[0] ^= 1
        assert not mac.verify(b"hello", bytes(tag))

    def test_tag_is_deterministic(self):
        mac = CbcMac(KEY)
        assert mac.tag(b"abc") == mac.tag(b"abc")

    def test_different_keys_different_tags(self):
        assert CbcMac(bytes(16)).tag(b"abc") != CbcMac(KEY).tag(b"abc")

    def test_length_prepend_blocks_prefix_confusion(self):
        """m and m || 0x00 padding must not collide (length is MACed)."""
        mac = CbcMac(KEY)
        assert mac.tag(b"abc") != mac.tag(b"abc\x00")
        assert mac.tag(b"") != mac.tag(b"\x00" * 8)

    def test_tag_size(self):
        assert len(CbcMac(KEY).tag(b"x")) == CbcMac.tag_size

    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_distinct_messages_distinct_tags(self, a, b):
        mac = CbcMac(KEY)
        if a != b:
            assert mac.tag(a) != mac.tag(b)

    @given(st.binary(max_size=128))
    def test_verify_roundtrip_property(self, message):
        mac = CbcMac(KEY)
        assert mac.verify(message, mac.tag(message))
