"""Shared fixtures: the paper network and cached small simulation runs.

Simulation runs are comparatively expensive, so integration tests share
session-scoped results instead of re-simulating per test.  Everything
is seeded; tests asserting on shared results must treat them as
read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.routing import greedy_grid_tree
from repro.net.topology import paper_topology
from repro.sim.config import SimulationConfig
from repro.sim.simulator import SensorNetworkSimulator


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    """Point the default result cache at a per-session temp directory.

    CLI commands cache simulation results by default; without this the
    test suite would write into the user's real cache and reuse entries
    across runs.
    """
    import os

    cache_dir = tmp_path_factory.mktemp("repro-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="session")
def paper_deployment():
    """The Figure 1 deployment."""
    return paper_topology()


@pytest.fixture(scope="session")
def paper_tree(paper_deployment):
    """The staircase routing tree on the Figure 1 deployment."""
    return greedy_grid_tree(paper_deployment, width=12)


@pytest.fixture(scope="session")
def rng():
    """A deterministic numpy generator for unit tests."""
    return np.random.Generator(np.random.PCG64(1234))


def _run_case(interarrival: float, case: str, n_packets: int = 200, seed: int = 9):
    config = SimulationConfig.paper_baseline(
        interarrival=interarrival, case=case, n_packets=n_packets, seed=seed
    )
    return SensorNetworkSimulator(config).run()


@pytest.fixture(scope="session")
def nodelay_result():
    """Case 1 at high load (read-only)."""
    return _run_case(2.0, "no-delay")


@pytest.fixture(scope="session")
def unlimited_result():
    """Case 2 at high load (read-only)."""
    return _run_case(2.0, "unlimited")


@pytest.fixture(scope="session")
def rcad_result():
    """Case 3 at high load (read-only)."""
    return _run_case(2.0, "rcad")


@pytest.fixture(scope="session")
def rcad_result_slow():
    """Case 3 at low load, where preemption is rare (read-only)."""
    return _run_case(20.0, "rcad")
