"""Unit tests for packets, headers and adversary observations."""

import pytest

from repro.net.packet import Packet, PacketObservation, RoutingHeader


def _packet(**overrides):
    defaults = dict(
        header=RoutingHeader(previous_hop=5, origin=5, routing_seq=0, hop_count=0),
        payload=None,
        flow_id=1,
        created_at=12.5,
        packet_id=0,
    )
    defaults.update(overrides)
    return Packet(**defaults)


class TestRoutingHeader:
    def test_forwarded_increments_hop_count(self):
        header = RoutingHeader(previous_hop=5, origin=5, routing_seq=3, hop_count=0)
        forwarded = header.forwarded(by_node=9)
        assert forwarded.hop_count == 1
        assert forwarded.previous_hop == 9

    def test_forwarded_preserves_origin_and_seq(self):
        header = RoutingHeader(previous_hop=5, origin=5, routing_seq=3, hop_count=0)
        forwarded = header.forwarded(by_node=9)
        assert forwarded.origin == 5
        assert forwarded.routing_seq == 3

    def test_forwarded_is_new_object(self):
        header = RoutingHeader(previous_hop=5, origin=5, routing_seq=3, hop_count=0)
        assert header.forwarded(by_node=9) is not header
        assert header.hop_count == 0  # original untouched

    def test_chained_forwarding(self):
        header = RoutingHeader(previous_hop=5, origin=5, routing_seq=0, hop_count=0)
        for node in (6, 7, 8):
            header = header.forwarded(by_node=node)
        assert header.hop_count == 3
        assert header.previous_hop == 8


class TestObservation:
    def test_observation_carries_cleartext_header(self):
        packet = _packet()
        obs = packet.observe(arrival_time=99.0)
        assert obs.arrival_time == 99.0
        assert obs.origin == 5
        assert obs.hop_count == 0
        assert obs.routing_seq == 0
        assert obs.previous_hop == 5

    def test_observation_has_no_ground_truth_fields(self):
        """The threat-model firewall: no creation time, no payload."""
        obs = _packet().observe(arrival_time=99.0)
        field_names = set(vars(obs))
        assert "created_at" not in field_names
        assert "payload" not in field_names
        assert "flow_id" not in field_names
        assert "packet" not in field_names

    def test_observation_is_frozen(self):
        obs = _packet().observe(arrival_time=1.0)
        with pytest.raises(AttributeError):
            obs.arrival_time = 2.0  # type: ignore[misc]

    def test_observation_is_value_type(self):
        a = _packet().observe(arrival_time=1.0)
        b = _packet().observe(arrival_time=1.0)
        assert a == b

    def test_direct_construction(self):
        obs = PacketObservation(
            arrival_time=5.0, previous_hop=2, origin=1, routing_seq=7, hop_count=4
        )
        assert obs.hop_count == 4
