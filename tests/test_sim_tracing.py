"""Tests for per-packet lifecycle tracing."""

import pytest

from repro.core.planner import UniformPlanner
from repro.net.routing import shortest_path_tree
from repro.net.topology import line_deployment
from repro.sim.config import BufferSpec, FlowSpec, SimulationConfig
from repro.sim.simulator import SensorNetworkSimulator
from repro.sim.tracing import PacketTrace, TraceEvent
from repro.traffic.generators import PeriodicTraffic


def _run(case="unlimited", hops=3, n_packets=20, interval=5.0, capacity=2,
         trace=True, seed=2):
    deployment = line_deployment(hops=hops)
    tree = shortest_path_tree(deployment)
    if case == "no-delay":
        plan, buffers = None, BufferSpec(kind="infinite")
    else:
        plan = UniformPlanner(10.0).plan(tree, {0: 1.0 / interval})
        buffers = (
            BufferSpec(kind=case, capacity=capacity)
            if case in ("rcad", "drop-tail")
            else BufferSpec(kind="infinite")
        )
    config = SimulationConfig(
        deployment=deployment, tree=tree,
        flows=[FlowSpec(flow_id=1, source=0,
                        traffic=PeriodicTraffic(interval), n_packets=n_packets)],
        delay_plan=plan, buffers=buffers,
        record_packet_traces=trace, seed=seed,
    )
    return SensorNetworkSimulator(config).run()


class TestTraceEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent(time=0.0, kind="teleported", node=1)

    def test_unknown_kind_rejected_via_add(self):
        """PacketTrace.add validates too (it builds a TraceEvent)."""
        trace = PacketTrace(flow_id=1, packet_id=0)
        with pytest.raises(ValueError, match="teleported"):
            trace.add(0.0, "teleported", 0)

    def test_every_documented_kind_accepted(self):
        from repro.sim.tracing import EVENT_KINDS

        for kind in EVENT_KINDS:
            TraceEvent(time=0.0, kind=kind, node=1)

    def test_error_message_lists_legal_kinds(self):
        with pytest.raises(ValueError, match="delivered"):
            TraceEvent(time=0.0, kind="", node=1)

    def test_out_of_order_rejected(self):
        trace = PacketTrace(flow_id=1, packet_id=0)
        trace.add(5.0, "created", 0)
        with pytest.raises(ValueError):
            trace.add(4.0, "forwarded", 0)


class TestRecordedTraces:
    def test_no_traces_by_default(self):
        result = _run(trace=False)
        assert result.packet_traces == {}

    def test_every_packet_traced(self):
        result = _run(n_packets=15)
        assert len(result.packet_traces) == 15
        assert all(t.delivered for t in result.packet_traces.values())

    def test_lifecycle_structure_no_delay(self):
        result = _run(case="no-delay", hops=3, n_packets=1)
        trace = result.packet_traces[(1, 0)]
        kinds = [e.kind for e in trace.events]
        assert kinds == ["created", "forwarded", "forwarded", "forwarded", "delivered"]

    def test_lifecycle_structure_buffered(self):
        result = _run(case="unlimited", hops=2, n_packets=1)
        trace = result.packet_traces[(1, 0)]
        kinds = [e.kind for e in trace.events]
        # Buffered then forwarded at each of the 2 buffering nodes.
        assert kinds == [
            "created", "buffered", "forwarded", "buffered", "forwarded", "delivered",
        ]

    def test_path_matches_line(self):
        result = _run(case="unlimited", hops=3, n_packets=1)
        trace = result.packet_traces[(1, 0)]
        assert trace.path() == [0, 1, 2, 3]

    def test_latency_matches_record(self):
        result = _run(case="unlimited", hops=3, n_packets=5)
        for record in result.records:
            trace = result.packet_traces[(record.flow_id, record.packet_id)]
            assert trace.end_to_end_latency() == pytest.approx(record.latency)

    def test_buffering_delays_sum_to_artificial_latency(self):
        result = _run(case="unlimited", hops=3, n_packets=5)
        for record in result.records:
            trace = result.packet_traces[(record.flow_id, record.packet_id)]
            artificial = sum(d for _, d in trace.buffering_delays())
            assert artificial == pytest.approx(record.latency - 3.0)  # 3 tx

    def test_preemptions_traced(self):
        result = _run(case="rcad", interval=1.0, n_packets=60, capacity=2)
        preempted = [
            t for t in result.packet_traces.values() if t.preemption_count > 0
        ]
        assert preempted
        # Trace-level preemption counts agree with the records.
        for record in result.records:
            trace = result.packet_traces[(record.flow_id, record.packet_id)]
            assert trace.preemption_count == record.preemptions_experienced

    def test_preempted_packet_left_before_scheduled_release(self):
        result = _run(case="rcad", interval=1.0, n_packets=60, capacity=2)
        for trace in result.packet_traces.values():
            for event in trace.events:
                if event.kind == "preempted":
                    # detail = the release time it would have had.
                    assert event.detail > event.time

    def test_dropped_packets_traced(self):
        result = _run(case="drop-tail", interval=1.0, n_packets=60, capacity=2)
        dropped_traces = [
            t for t in result.packet_traces.values()
            if any(e.kind == "dropped" for e in t.events)
        ]
        assert len(dropped_traces) == result.drop_count()
        for trace in dropped_traces:
            assert not trace.delivered
            with pytest.raises(ValueError):
                trace.end_to_end_latency()

    def test_render_mentions_every_event(self):
        result = _run(case="unlimited", hops=2, n_packets=1)
        text = result.packet_traces[(1, 0)].render()
        for kind in ("created", "buffered", "forwarded", "delivered"):
            assert kind in text
