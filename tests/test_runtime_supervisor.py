"""Fault-tolerance layer: timeouts, retries, quarantine, degradation.

The acceptance scenarios from the resilience issue live here: a hung
worker (timeout) and a crashed worker (``os._exit``) both leave the
sweep *completed*, with the offending cells named in a structured
``FailureReport`` and every other cell bit-identical to the serial
run.
"""

import os
import time

import pytest

from repro.analysis.sweep import sweep
from repro.runtime import (
    FailureReport,
    RetryPolicy,
    SerialExecutor,
    Supervisor,
    WorkerError,
    use_runtime,
)
from repro.runtime import executors as executors_module

#: fast-failing policy variants used throughout (no multi-second backoff)
QUARANTINE = dict(backoff=0.01, on_failure="quarantine")


class TestRetryPolicy:
    def test_default_is_unsupervised(self):
        assert RetryPolicy().is_default
        assert not RetryPolicy(max_attempts=2).is_default

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0)
        with pytest.raises(ValueError):
            RetryPolicy(on_failure="explode")

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(backoff=1.0, backoff_factor=2.0, max_backoff=3.0)
        assert policy.delay_before(1) == 1.0
        assert policy.delay_before(2) == 2.0
        assert policy.delay_before(3) == 3.0  # capped


class TestSerialSupervision:
    def test_retry_eventually_succeeds(self):
        attempts = {"n": 0}

        def flaky(x):
            if x == 2:
                attempts["n"] += 1
                if attempts["n"] < 3:
                    raise ValueError("transient")
            return x * 10

        with use_runtime(retry=RetryPolicy(max_attempts=3, backoff=0.01)):
            assert sweep([1, 2, 3], flaky) == [10, 20, 30]
        assert attempts["n"] == 3

    def test_exhausted_retries_raise_original_exception(self):
        def bad(x):
            raise KeyError("always")

        with use_runtime(retry=RetryPolicy(max_attempts=2, backoff=0.01)):
            with pytest.raises(KeyError):
                sweep([1], bad)

    def test_quarantine_completes_with_report(self):
        def bad(x):
            if x == 7:
                raise ValueError("doomed")
            return x

        with use_runtime(retry=RetryPolicy(max_attempts=2, **QUARANTINE)) as ctx:
            assert sweep([5, 7, 9], bad) == [5, None, 9]
        (report,) = ctx.failure_reports
        assert report.quarantined_indices == [1]
        (record,) = report.failures
        assert record.kind == "error"
        assert record.attempts == 2
        assert "doomed" in record.message
        assert "ValueError" in record.traceback


class TestParallelSupervision:
    def test_worker_error_retried_then_quarantined(self):
        def bad(x):
            if x == 3:
                raise ValueError("deterministic failure")
            return x * 2

        with use_runtime(
            jobs=2, retry=RetryPolicy(max_attempts=2, **QUARANTINE)
        ) as ctx:
            result = sweep([0, 1, 2, 3, 4], bad)
        assert result == [0, 2, 4, None, 8]
        (report,) = ctx.failure_reports
        assert report.quarantined_indices == [3]
        assert report.failures[0].attempts == 2

    def test_hung_worker_times_out_and_is_quarantined(self):
        def hang(x):
            if x == 2:
                time.sleep(60)
            return x

        started = time.monotonic()
        with use_runtime(
            jobs=2,
            retry=RetryPolicy(max_attempts=2, timeout=0.5, **QUARANTINE),
        ) as ctx:
            result = sweep([0, 1, 2, 3, 4], hang)
        elapsed = time.monotonic() - started
        assert result == [0, 1, None, 3, 4]
        (report,) = ctx.failure_reports
        assert report.quarantined_indices == [2]
        assert report.failures[0].kind == "timeout"
        assert elapsed < 30  # two 0.5s attempts, not 60s of hang

    def test_crashed_worker_is_probed_and_quarantined(self):
        def crash(x):
            if x == 1:
                os._exit(17)
            return x * 2

        with use_runtime(
            jobs=2, retry=RetryPolicy(max_attempts=2, **QUARANTINE)
        ) as ctx:
            result = sweep([0, 1, 2, 3, 4], crash)
        assert result == [0, None, 4, 6, 8]
        (report,) = ctx.failure_reports
        assert report.quarantined_indices == [1]
        assert report.failures[0].kind == "crash"

    def test_non_quarantined_cells_match_serial_run(self):
        """Acceptance: supervision must not perturb surviving cells."""

        def compute(x):
            if x == 3:
                os._exit(5)
            return (x * 1.5, x ** 2)

        serial = [(x * 1.5, x ** 2) for x in range(8)]
        with use_runtime(
            jobs=3, retry=RetryPolicy(max_attempts=2, **QUARANTINE)
        ):
            supervised = sweep(list(range(8)), compute)
        for index, (got, want) in enumerate(zip(supervised, serial)):
            if index == 3:
                assert got is None
            else:
                assert got == want

    def test_timeout_raise_mode_raises_worker_error(self):
        def hang(x):
            if x == 1:
                time.sleep(60)
            return x

        with use_runtime(
            jobs=2, retry=RetryPolicy(max_attempts=1, timeout=0.5, backoff=0.01)
        ):
            with pytest.raises(WorkerError, match="wall clock"):
                sweep([0, 1, 2, 3], hang)

    def test_worker_counters_still_merged_under_supervision(self, tmp_path):
        from repro.runtime import run_simulation
        from repro.sim.config import SimulationConfig

        def cell(seed):
            config = SimulationConfig.paper_baseline(
                interarrival=4.0, case="rcad", n_packets=20, seed=seed
            )
            return run_simulation(config).delivered_count(1)

        with use_runtime(
            jobs=2,
            cache_dir=tmp_path,
            retry=RetryPolicy(max_attempts=2, backoff=0.01),
        ) as ctx:
            sweep([0, 1, 2], cell)
        assert ctx.stats.simulations == 3
        assert ctx.cache.stats.stores == 3


class TestDegradation:
    def test_unbuildable_pool_degrades_to_serial(self, monkeypatch):
        monkeypatch.setattr(
            Supervisor, "_new_pool", lambda self: None
        )
        with use_runtime(
            jobs=4, retry=RetryPolicy(max_attempts=2, **QUARANTINE)
        ) as ctx:
            assert sweep([1, 2, 3, 4], lambda x: x + 1) == [2, 3, 4, 5]
        (report,) = ctx.failure_reports
        assert report.degraded_to_serial
        assert report.failures == []

    def test_supervised_map_serial_when_fork_unavailable(self, monkeypatch):
        monkeypatch.setattr(
            "multiprocessing.get_all_start_methods", lambda: ["spawn"]
        )
        with use_runtime(jobs=4, retry=RetryPolicy(max_attempts=2, backoff=0.01)):
            assert sweep([1, 2, 3], lambda x: x * 2) == [2, 4, 6]


class TestFailureReportRendering:
    def test_render_names_cells_and_kinds(self):
        report = FailureReport(label="demo", n_items=10)
        with use_runtime(retry=RetryPolicy(max_attempts=1, **QUARANTINE)) as ctx:
            sweep([1, 2], lambda x: 1 / 0)
            report = ctx.failure_reports[0]
        text = report.render()
        assert "2/2 cells quarantined" in text
        assert "cell 0" in text and "cell 1" in text
        assert "[error x1]" in text

    def test_plain_context_bypasses_supervision(self):
        # The default context must keep the legacy chunked path: the
        # executor's map is called exactly once with all items.
        calls = []

        class Spy(SerialExecutor):
            def map(self, fn, items):
                calls.append(list(items))
                return super().map(fn, items)

        from repro.runtime import RuntimeContext
        from repro.runtime.context import _STACK

        _STACK.append(RuntimeContext(executor=Spy()))
        try:
            assert sweep([1, 2, 3], lambda x: x) == [1, 2, 3]
        finally:
            _STACK.pop()
        assert calls == [[1, 2, 3]]


class TestInWorkerGuard:
    def test_supervised_nested_sweep_stays_serial(self, monkeypatch):
        # Inside a forked worker the supervisor must not open a nested
        # pool (fork bomb); simulate the worker flag directly.
        monkeypatch.setattr(executors_module, "_IN_WORKER", True)
        with use_runtime(jobs=4, retry=RetryPolicy(max_attempts=2, backoff=0.01)):
            assert sweep([1, 2, 3], lambda x: x + 7) == [8, 9, 10]
