"""Unit tests for link models."""

import numpy as np
import pytest

from repro.net.link import ConstantDelayLink, LossyLink


class TestConstantDelayLink:
    def test_default_paper_delay(self):
        assert ConstantDelayLink().transmission_delay() == 1.0

    def test_custom_delay(self):
        assert ConstantDelayLink(delay=2.5).transmission_delay() == 2.5

    def test_always_delivers(self):
        link = ConstantDelayLink()
        assert all(link.delivers() for _ in range(100))

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            ConstantDelayLink(delay=-1.0)


class TestLossyLink:
    def _rng(self, seed=0):
        return np.random.Generator(np.random.PCG64(seed))

    def test_loss_rate_statistical(self):
        link = LossyLink(delay=1.0, loss_probability=0.3, rng=self._rng())
        delivered = sum(link.delivers() for _ in range(20_000))
        assert delivered / 20_000 == pytest.approx(0.7, abs=0.02)

    def test_zero_loss_always_delivers(self):
        link = LossyLink(delay=1.0, loss_probability=0.0, rng=self._rng())
        assert all(link.delivers() for _ in range(100))

    def test_inherits_delay(self):
        link = LossyLink(delay=3.0, loss_probability=0.1, rng=self._rng())
        assert link.transmission_delay() == 3.0

    def test_certain_loss_is_a_valid_endpoint(self):
        """p = 1.0 is the crash-equivalent link: never delivers."""
        link = LossyLink(delay=1.0, loss_probability=1.0, rng=self._rng())
        assert not any(link.delivers() for _ in range(100))

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            LossyLink(delay=1.0, loss_probability=1.01, rng=self._rng())
        with pytest.raises(ValueError):
            LossyLink(delay=1.0, loss_probability=-0.1, rng=self._rng())

    def test_reproducible_given_seed(self):
        a = LossyLink(1.0, 0.5, self._rng(9))
        b = LossyLink(1.0, 0.5, self._rng(9))
        assert [a.delivers() for _ in range(50)] == [b.delivers() for _ in range(50)]
