"""Unit tests for the hop-delay planners."""

import pytest

from repro.core.delays import ExponentialDelay
from repro.core.planner import (
    DelayPlan,
    ErlangTargetPlanner,
    SinkWeightedPlanner,
    UniformPlanner,
)
from repro.net.routing import RoutingTree
from repro.queueing.erlang import erlang_b

# A 4-hop line 4 -> 3 -> 2 -> 1 -> 0(sink) plus a side branch 5 -> 2.
TREE = RoutingTree(parent={4: 3, 3: 2, 2: 1, 1: 0, 5: 2}, sink=0)
FLOWS = {4: 0.25, 5: 0.25}


class TestDelayPlan:
    def test_per_node_lookup_with_default(self):
        plan = DelayPlan(
            per_node={3: ExponentialDelay.from_mean(10.0)},
            default=ExponentialDelay.from_mean(30.0),
        )
        assert plan.distribution_for(3).mean == 10.0
        assert plan.distribution_for(4).mean == 30.0

    def test_missing_node_without_default_raises(self):
        plan = DelayPlan(per_node={}, default=None)
        with pytest.raises(KeyError):
            plan.distribution_for(1)

    def test_mean_path_delay(self):
        plan = DelayPlan(per_node={}, default=ExponentialDelay.from_mean(30.0))
        # Source 4 buffers at 4, 3, 2, 1 -> 4 nodes.
        assert plan.mean_path_delay(TREE, 4) == pytest.approx(120.0)


class TestUniformPlanner:
    def test_constant_mean_everywhere(self):
        plan = UniformPlanner(30.0).plan(TREE, FLOWS)
        for node in (1, 2, 3, 4, 5):
            assert plan.distribution_for(node).mean == pytest.approx(30.0)

    def test_zero_delay_rejected_at_plan_time(self):
        with pytest.raises(ValueError):
            UniformPlanner(0.0).plan(TREE, FLOWS)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            UniformPlanner(-1.0)


class TestSinkWeightedPlanner:
    def test_deeper_nodes_get_longer_delays(self):
        plan = SinkWeightedPlanner(30.0).plan(TREE, FLOWS)
        means = [plan.distribution_for(node).mean for node in (1, 2, 3, 4)]
        assert means == sorted(means)
        assert means[0] < means[-1]

    def test_budget_preserved_for_deepest_flow(self):
        """Total mean path delay of the deepest flow equals uniform's."""
        plan = SinkWeightedPlanner(30.0).plan(TREE, FLOWS)
        assert plan.mean_path_delay(TREE, 4) == pytest.approx(4 * 30.0)

    def test_exponent_zero_is_uniform(self):
        plan = SinkWeightedPlanner(30.0, exponent=0.0).plan(TREE, FLOWS)
        for node in (1, 2, 3, 4):
            assert plan.distribution_for(node).mean == pytest.approx(30.0)

    def test_higher_exponent_more_skew(self):
        gentle = SinkWeightedPlanner(30.0, exponent=1.0).plan(TREE, FLOWS)
        steep = SinkWeightedPlanner(30.0, exponent=2.0).plan(TREE, FLOWS)
        assert (
            steep.distribution_for(4).mean > gentle.distribution_for(4).mean
        )
        assert steep.distribution_for(1).mean < gentle.distribution_for(1).mean

    def test_all_flow_nodes_covered(self):
        plan = SinkWeightedPlanner(30.0).plan(TREE, FLOWS)
        for node in (1, 2, 3, 4, 5):
            assert plan.distribution_for(node).mean > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SinkWeightedPlanner(0.0)
        with pytest.raises(ValueError):
            SinkWeightedPlanner(30.0, exponent=-1.0)
        with pytest.raises(ValueError):
            SinkWeightedPlanner(30.0).plan(TREE, {})


class TestErlangTargetPlanner:
    def test_every_node_meets_target(self):
        planner = ErlangTargetPlanner(buffer_capacity=10, target_loss=0.05)
        plan = planner.plan(TREE, FLOWS)
        # Aggregate rates: node 4 and 5 carry 0.25; 3 carries 0.25;
        # 2 and 1 carry 0.5.
        rates = {4: 0.25, 5: 0.25, 3: 0.25, 2: 0.5, 1: 0.5}
        for node, rate in rates.items():
            rho = rate * plan.distribution_for(node).mean
            assert erlang_b(rho, 10) <= 0.05 + 1e-9

    def test_near_sink_nodes_get_shorter_delays(self):
        """The paper's rule: larger lambda -> smaller 1/mu."""
        plan = ErlangTargetPlanner(10, 0.05).plan(TREE, FLOWS)
        assert plan.distribution_for(1).mean < plan.distribution_for(4).mean

    def test_cap_applies(self):
        planner = ErlangTargetPlanner(10, 0.05, max_mean_delay=10.0)
        plan = planner.plan(TREE, {4: 0.001, 5: 0.001})
        for node in (1, 2, 3, 4, 5):
            assert plan.distribution_for(node).mean <= 10.0

    def test_no_default_for_uninvolved_nodes(self):
        plan = ErlangTargetPlanner(10, 0.05).plan(TREE, FLOWS)
        with pytest.raises(KeyError):
            plan.distribution_for(999)

    def test_validation(self):
        with pytest.raises(ValueError):
            ErlangTargetPlanner(0, 0.05)
        with pytest.raises(ValueError):
            ErlangTargetPlanner(10, 1.5)
        with pytest.raises(ValueError):
            ErlangTargetPlanner(10, 0.05, max_mean_delay=0.0)
        with pytest.raises(ValueError):
            ErlangTargetPlanner(10, 0.05).plan(TREE, {})
