"""Unit tests for the adversary estimators."""

import pytest

from repro.core.adversary import (
    AdaptiveAdversary,
    BaselineAdversary,
    FlowKnowledge,
    NaiveAdversary,
    PathAwareAdaptiveAdversary,
)
from repro.net.packet import PacketObservation
from repro.queueing.erlang import erlang_b


def _obs(arrival, hops=15, origin=103):
    return PacketObservation(
        arrival_time=arrival, previous_hop=1, origin=origin,
        routing_seq=0, hop_count=hops,
    )


RCAD_KNOWLEDGE = FlowKnowledge(
    transmission_delay=1.0, mean_delay_per_hop=30.0, buffer_capacity=10, n_sources=4
)


class TestFlowKnowledge:
    def test_defaults(self):
        knowledge = FlowKnowledge()
        assert knowledge.transmission_delay == 1.0
        assert knowledge.mean_delay_per_hop == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowKnowledge(transmission_delay=-1.0)
        with pytest.raises(ValueError):
            FlowKnowledge(mean_delay_per_hop=-1.0)
        with pytest.raises(ValueError):
            FlowKnowledge(buffer_capacity=0)
        with pytest.raises(ValueError):
            FlowKnowledge(n_sources=0)


class TestNaiveAdversary:
    def test_formula(self):
        adversary = NaiveAdversary(FlowKnowledge(transmission_delay=1.0))
        assert adversary.estimate(_obs(arrival=100.0, hops=15)) == 85.0

    def test_exact_on_undefended_network(self):
        """z = x + h*tau implies x_hat = x."""
        adversary = NaiveAdversary(FlowKnowledge(transmission_delay=2.0))
        x = 50.0
        z = x + 7 * 2.0
        assert adversary.estimate(_obs(arrival=z, hops=7)) == pytest.approx(x)


class TestBaselineAdversary:
    def test_formula(self):
        adversary = BaselineAdversary(RCAD_KNOWLEDGE)
        # x_hat = z - h (tau + 1/mu) = 500 - 15 * 31.
        assert adversary.estimate(_obs(arrival=500.0, hops=15)) == pytest.approx(35.0)

    def test_unbiased_against_unlimited_buffers_on_average(self):
        """Against the mean total delay, the estimate is centred."""
        adversary = BaselineAdversary(RCAD_KNOWLEDGE)
        x = 10.0
        mean_z = x + 15 * (1.0 + 30.0)
        assert adversary.estimate(_obs(arrival=mean_z, hops=15)) == pytest.approx(x)

    def test_estimate_all_requires_arrival_order(self):
        adversary = BaselineAdversary(RCAD_KNOWLEDGE)
        with pytest.raises(ValueError):
            adversary.estimate_all([_obs(10.0), _obs(5.0)])

    def test_estimate_all_maps_each(self):
        adversary = BaselineAdversary(RCAD_KNOWLEDGE)
        estimates = adversary.estimate_all([_obs(500.0), _obs(600.0)])
        assert estimates == [pytest.approx(35.0), pytest.approx(135.0)]


class TestAdaptiveAdversary:
    def _feed_uniform(self, adversary, rate, count=200, hops=15):
        """Feed `count` observations at a constant aggregate rate."""
        estimates = []
        for i in range(count):
            estimates.append(adversary.estimate(_obs(arrival=i / rate, hops=hops)))
        return estimates

    def test_low_rate_behaves_like_baseline(self):
        adversary = AdaptiveAdversary(RCAD_KNOWLEDGE)
        baseline = BaselineAdversary(RCAD_KNOWLEDGE)
        # Aggregate rate 0.05 -> rho = 1.5 on k = 10: loss ~ 0.
        estimates = self._feed_uniform(adversary, rate=0.05)
        final_obs = _obs(arrival=(200 / 0.05) + 100.0)
        assert adversary.estimate(final_obs) == pytest.approx(
            baseline.estimate(final_obs)
        )
        assert not adversary.in_preemption_regime()

    def test_high_rate_switches_to_saturation_estimate(self):
        adversary = AdaptiveAdversary(RCAD_KNOWLEDGE, clamp_to_advertised=False)
        # Aggregate rate 2.0 -> rho = 60 on k = 10: loss >> 0.1.
        self._feed_uniform(adversary, rate=2.0)
        assert adversary.in_preemption_regime()
        assert adversary.observed_rate == pytest.approx(2.0, rel=0.02)
        # Next arrival continues the same rate (a distant arrival would
        # legitimately dilute the adversary's rate estimate).
        # Per-hop extra: n k / lambda_tot = 4 * 10 / 2 = 20.
        obs = _obs(arrival=200 / 2.0 + 0.5, hops=15)
        expected = obs.arrival_time - 15 * (1.0 + 20.0)
        assert adversary.estimate(obs) == pytest.approx(expected, abs=3.0)

    def test_clamp_caps_at_advertised_mean(self):
        adversary = AdaptiveAdversary(RCAD_KNOWLEDGE, clamp_to_advertised=True)
        # Rate 0.4: rho = 12 > threshold load, but n k / lambda = 100 > 30.
        self._feed_uniform(adversary, rate=0.4)
        assert adversary.in_preemption_regime()
        obs = _obs(arrival=200 / 0.4 + 2.0, hops=15)
        baseline = BaselineAdversary(RCAD_KNOWLEDGE)
        assert adversary.estimate(obs) == pytest.approx(
            baseline.estimate(obs), rel=1e-6
        )

    def test_warmup_behaves_like_baseline(self):
        adversary = AdaptiveAdversary(RCAD_KNOWLEDGE, warmup_observations=50)
        baseline = BaselineAdversary(RCAD_KNOWLEDGE)
        obs = _obs(arrival=1.0)
        assert adversary.estimate(obs) == baseline.estimate(obs)

    def test_preemption_probability_matches_erlang(self):
        adversary = AdaptiveAdversary(RCAD_KNOWLEDGE)
        self._feed_uniform(adversary, rate=1.0)
        expected = erlang_b(1.0 * 30.0, 10)
        assert adversary.preemption_probability() == pytest.approx(expected, rel=0.05)

    def test_reset_clears_state(self):
        adversary = AdaptiveAdversary(RCAD_KNOWLEDGE)
        self._feed_uniform(adversary, rate=2.0)
        adversary.reset()
        assert adversary.observed_rate is None
        assert not adversary.in_preemption_regime()

    def test_requires_capacity_and_delay(self):
        with pytest.raises(ValueError):
            AdaptiveAdversary(FlowKnowledge(mean_delay_per_hop=30.0))
        with pytest.raises(ValueError):
            AdaptiveAdversary(FlowKnowledge(buffer_capacity=10))

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            AdaptiveAdversary(RCAD_KNOWLEDGE, preemption_threshold=0.0)
        with pytest.raises(ValueError):
            AdaptiveAdversary(RCAD_KNOWLEDGE, warmup_observations=1)


class TestPathAwareAdversary:
    PATH_RATES = {103: [0.5] * 4 + [0.75] * 2 + [1.0] * 9}

    def test_unsaturated_path_equals_baseline(self):
        light = {103: [0.01] * 15}
        adversary = PathAwareAdaptiveAdversary(RCAD_KNOWLEDGE, path_rates=light)
        baseline = BaselineAdversary(RCAD_KNOWLEDGE)
        obs = _obs(arrival=1000.0)
        assert adversary.estimate(obs) == pytest.approx(baseline.estimate(obs))

    def test_saturated_hops_use_drain_time(self):
        adversary = PathAwareAdaptiveAdversary(
            RCAD_KNOWLEDGE, path_rates=self.PATH_RATES
        )
        # Every node saturated (rho from 15 to 30 on k=10):
        # delay = sum min(30, 10/rate) = 4*20 + 2*13.33 + 9*10 = 196.67.
        obs = _obs(arrival=1000.0, hops=15)
        expected = 1000.0 - 15 * 1.0 - (4 * 20.0 + 2 * (10 / 0.75) + 9 * 10.0)
        assert adversary.estimate(obs) == pytest.approx(expected)

    def test_unknown_origin_raises(self):
        adversary = PathAwareAdaptiveAdversary(
            RCAD_KNOWLEDGE, path_rates=self.PATH_RATES
        )
        with pytest.raises(KeyError):
            adversary.estimate(_obs(arrival=10.0, origin=999))

    def test_validation(self):
        with pytest.raises(ValueError):
            PathAwareAdaptiveAdversary(RCAD_KNOWLEDGE, path_rates={})
        with pytest.raises(ValueError):
            PathAwareAdaptiveAdversary(
                FlowKnowledge(mean_delay_per_hop=30.0), path_rates=self.PATH_RATES
            )
        with pytest.raises(ValueError):
            PathAwareAdaptiveAdversary(
                RCAD_KNOWLEDGE, path_rates=self.PATH_RATES, preemption_threshold=1.5
            )
