"""Tests for the post-run invariant auditor."""

from types import SimpleNamespace

import pytest

from repro.faults import ConservationCounters, InvariantAuditor, InvariantViolation
from repro.sim.config import SimulationConfig
from repro.sim.simulator import SensorNetworkSimulator


def _clean_result(end_time=100.0):
    """A minimal duck-typed result that satisfies every clock check."""
    return SimpleNamespace(
        end_time=end_time,
        observations=[
            SimpleNamespace(arrival_time=t) for t in (1.0, 2.0, 2.0, 50.0)
        ],
        records=[
            SimpleNamespace(flow_id=1, packet_id=i, delivered_at=t)
            for i, t in enumerate((1.0, 2.0, 2.0, 50.0))
        ],
        node_stats={
            7: SimpleNamespace(observation_time=end_time, occupancy_time_integral=3.5)
        },
    )


def _balanced_counters(**overrides):
    counters = ConservationCounters(
        created=10, delivered=4, buffer_dropped=3, lost_in_transit=2,
        stranded_in_buffer=1, stranding_nodes={7}, crash_nodes={7},
    )
    for name, value in overrides.items():
        setattr(counters, name, value)
    return counters


class TestConservationChecks:
    def test_balanced_ledger_passes(self):
        InvariantAuditor(_balanced_counters()).audit(_clean_result())

    def test_accounted_sums_terminal_states(self):
        assert _balanced_counters().accounted() == 10

    def test_creation_mismatch_detected(self):
        auditor = InvariantAuditor(_balanced_counters(created=11))
        violations = auditor.conservation_violations()
        assert len(violations) == 1
        assert "conservation" in violations[0]

    def test_copy_mismatch_detected(self):
        auditor = InvariantAuditor(
            _balanced_counters(extra_copies_arrived=5, duplicates_suppressed=4)
        )
        assert any("copy" in v for v in auditor.conservation_violations())

    def test_crashed_release_detected(self):
        auditor = InvariantAuditor(_balanced_counters(crashed_releases=1))
        assert any("crash" in v for v in auditor.conservation_violations())

    def test_rogue_stranding_node_detected(self):
        auditor = InvariantAuditor(_balanced_counters(crash_nodes=set()))
        violations = auditor.conservation_violations()
        assert any("non-crashing" in v for v in violations)

    def test_negative_counter_detected(self):
        auditor = InvariantAuditor(
            _balanced_counters(delivered=-4, lost_in_transit=10)
        )
        assert any("negative" in v for v in auditor.conservation_violations())


class TestClockChecks:
    def test_non_monotone_observations_detected(self):
        result = _clean_result()
        result.observations[2] = SimpleNamespace(arrival_time=1.5)
        violations = InvariantAuditor(_balanced_counters()).clock_violations(result)
        assert any("non-monotone" in v for v in violations)

    def test_occupancy_past_end_detected(self):
        result = _clean_result()
        result.node_stats[7].observation_time = 200.0
        violations = InvariantAuditor(_balanced_counters()).clock_violations(result)
        assert any("past the run end" in v for v in violations)

    def test_negative_occupancy_integral_detected(self):
        result = _clean_result()
        result.node_stats[7].occupancy_time_integral = -1.0
        violations = InvariantAuditor(_balanced_counters()).clock_violations(result)
        assert any("negative occupancy" in v for v in violations)

    def test_delivery_after_end_detected(self):
        result = _clean_result(end_time=10.0)
        violations = InvariantAuditor(_balanced_counters()).clock_violations(result)
        assert any("after the run end" in v for v in violations)


class TestAlignmentCheck:
    def test_tap_and_truth_must_align(self):
        result = _clean_result()
        result.records = result.records[:-1]
        violations = InvariantAuditor(_balanced_counters()).alignment_violations(
            result
        )
        assert violations and "observations" in violations[0]


class TestViolationReporting:
    def test_all_failures_reported_together(self):
        counters = _balanced_counters(created=99, crashed_releases=2)
        with pytest.raises(InvariantViolation) as excinfo:
            InvariantAuditor(counters).audit(_clean_result())
        assert len(excinfo.value.violations) == 2
        assert "conservation" in str(excinfo.value)
        assert "crash" in str(excinfo.value)


class TestAuditorWiredIntoSimulator:
    def _config(self):
        return SimulationConfig.paper_baseline(
            interarrival=4.0, case="rcad", n_packets=20, seed=2
        )

    def test_every_run_is_audited(self, monkeypatch):
        import repro.sim.simulator as simulator_module

        audited = []
        original = simulator_module.InvariantAuditor

        class Spy(original):
            def audit(self, result):
                audited.append(result)
                super().audit(result)

        monkeypatch.setattr(simulator_module, "InvariantAuditor", Spy)
        result = SensorNetworkSimulator(self._config()).run()
        assert audited == [result]

    def test_corrupted_ledger_fails_the_run(self):
        """A bookkeeping bug anywhere surfaces as a loud structured error."""

        class Corrupted(SensorNetworkSimulator):
            def _finalize(self):
                self._counters.created += 1  # simulate a lost count
                super()._finalize()

        with pytest.raises(InvariantViolation):
            Corrupted(self._config()).run()
