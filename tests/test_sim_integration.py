"""Integration tests: the full stack reproducing the paper's claims.

These tests assert the *shape* of the paper's results on small runs:
who wins, by what rough factor, and where the analytic models agree
with the simulator.  The full-size regenerations live in benchmarks/.
"""

import numpy as np
import pytest

from repro.core.adversary import PathAwareAdaptiveAdversary
from repro.core.planner import UniformPlanner
from repro.experiments.common import (
    build_adversary,
    paper_flow_knowledge,
    score_flow,
)
from repro.net.routing import shortest_path_tree
from repro.net.topology import line_deployment
from repro.queueing.mminf import MMInfinityQueue
from repro.queueing.tandem import QueueTreeModel
from repro.sim.config import BufferSpec, FlowSpec, SimulationConfig
from repro.sim.simulator import SensorNetworkSimulator
from repro.traffic.generators import PoissonTraffic


class TestFigure2Shape:
    """The core claims of Figure 2 on the session-shared runs."""

    def test_case1_mse_is_zero(self, nodelay_result):
        metrics = score_flow(nodelay_result, build_adversary("baseline", "no-delay"))
        assert metrics.mse == pytest.approx(0.0, abs=1e-9)

    def test_case2_mse_is_delay_variance_scale(self, unlimited_result):
        """Case 2 MSE ~ h / mu^2 = 15 * 900 = 13500 (variance only)."""
        metrics = score_flow(unlimited_result, build_adversary("baseline", "unlimited"))
        assert 8_000 < metrics.mse < 22_000

    def test_case3_mse_orders_of_magnitude_larger(
        self, unlimited_result, rcad_result
    ):
        case2 = score_flow(unlimited_result, build_adversary("baseline", "unlimited"))
        case3 = score_flow(rcad_result, build_adversary("baseline", "rcad"))
        assert case3.mse > 5 * case2.mse
        assert case3.mse > 5e4  # the paper's 10^5 scale

    def test_case1_latency_is_hop_count(self, nodelay_result):
        metrics = score_flow(nodelay_result, build_adversary("baseline", "no-delay"))
        assert metrics.latency.mean == pytest.approx(15.0)

    def test_case2_latency_is_full_delay_budget(self, unlimited_result):
        metrics = score_flow(unlimited_result, build_adversary("baseline", "unlimited"))
        assert metrics.latency.mean == pytest.approx(15 * 31.0, rel=0.05)

    def test_case3_latency_between_and_reduced(self, unlimited_result, rcad_result):
        """RCAD cuts latency vs case 2 by a factor of ~2-3 at 1/lambda=2."""
        case2 = score_flow(unlimited_result, build_adversary("baseline", "unlimited"))
        case3 = score_flow(rcad_result, build_adversary("baseline", "rcad"))
        assert 15.0 < case3.latency.mean < case2.latency.mean
        assert case2.latency.mean / case3.latency.mean > 1.8

    def test_rcad_converges_to_case2_at_low_load(self, rcad_result_slow):
        """At 1/lambda = 20 preemption is rare: MSE back to variance scale."""
        metrics = score_flow(rcad_result_slow, build_adversary("baseline", "rcad"))
        assert metrics.mse < 3e4

    def test_rcad_delivers_everything(self, rcad_result):
        assert rcad_result.drop_count() == 0
        assert rcad_result.delivered_count() == 4 * 200


class TestFigure3Shape:
    def test_adaptive_beats_baseline_at_high_load(self, rcad_result):
        baseline = score_flow(rcad_result, build_adversary("baseline", "rcad"))
        adaptive = score_flow(rcad_result, build_adversary("adaptive", "rcad"))
        assert adaptive.mse < baseline.mse
        assert adaptive.mse > 0  # reduced, not eliminated

    def test_adversaries_coincide_at_low_load(self, rcad_result_slow):
        baseline = score_flow(rcad_result_slow, build_adversary("baseline", "rcad"))
        adaptive = score_flow(rcad_result_slow, build_adversary("adaptive", "rcad"))
        assert adaptive.mse == pytest.approx(baseline.mse, rel=0.05)


class TestPathAwareAdversary:
    def test_strongest_adversary_wins(self, rcad_result, paper_tree, paper_deployment):
        sources = [
            paper_deployment.node_for_label(label)
            for label in ("S1", "S2", "S3", "S4")
        ]
        model = QueueTreeModel(
            parent=dict(paper_tree.parent),
            injection_rates={s: 0.5 for s in sources},
            default_service_rate=1.0 / 30.0,
        )
        adversary = PathAwareAdaptiveAdversary(
            knowledge=paper_flow_knowledge("rcad"),
            path_rates={
                s: [model.arrival_rate(n) for n in paper_tree.path(s)[:-1]]
                for s in sources
            },
        )
        path_aware = score_flow(rcad_result, adversary)
        baseline = score_flow(rcad_result, build_adversary("baseline", "rcad"))
        adaptive = score_flow(rcad_result, build_adversary("adaptive", "rcad"))
        assert path_aware.mse < adaptive.mse < baseline.mse
        assert path_aware.mse > 1_000  # residual privacy survives


class TestQueueTheoryAgreement:
    def test_line_occupancy_matches_mminf(self):
        """Poisson source through a 3-hop line with infinite buffers:
        the source node's time-averaged occupancy matches rho while
        traffic is flowing."""
        deployment = line_deployment(hops=3)
        tree = shortest_path_tree(deployment)
        rate, mean_delay, n = 1.0, 10.0, 4000
        flows = [
            FlowSpec(flow_id=1, source=0, traffic=PoissonTraffic(rate), n_packets=n)
        ]
        config = SimulationConfig(
            deployment=deployment, tree=tree, flows=flows,
            delay_plan=UniformPlanner(mean_delay).plan(tree, {0: rate}),
            buffers=BufferSpec(kind="infinite"), seed=8,
        )
        result = SensorNetworkSimulator(config).run()
        injection_span = n / rate
        busy_fraction = injection_span / result.end_time
        analytic = MMInfinityQueue(arrival_rate=rate, service_rate=1 / mean_delay)
        measured = result.node_stats[0].mean_occupancy / busy_fraction
        assert measured == pytest.approx(analytic.mean_occupancy, rel=0.15)

    def test_downstream_node_sees_same_rate(self):
        """Burke: the second node admits as many packets as the first."""
        deployment = line_deployment(hops=3)
        tree = shortest_path_tree(deployment)
        flows = [
            FlowSpec(flow_id=1, source=0, traffic=PoissonTraffic(0.5), n_packets=500)
        ]
        config = SimulationConfig(
            deployment=deployment, tree=tree, flows=flows,
            delay_plan=UniformPlanner(10.0).plan(tree, {0: 0.5}),
            buffers=BufferSpec(kind="infinite"), seed=2,
        )
        result = SensorNetworkSimulator(config).run()
        assert result.node_stats[1].admitted == result.node_stats[0].admitted
        assert result.node_stats[2].admitted == 500

    def test_mean_error_sign_under_rcad(self, rcad_result):
        """Preemption shortens delays, so the baseline adversary
        consistently *underestimates* creation times (negative error)."""
        metrics = score_flow(rcad_result, build_adversary("baseline", "rcad"))
        assert metrics.mean_error < -50.0


class TestCreationTimesGroundTruth:
    def test_periodic_ground_truth_matches_spec(self, nodelay_result):
        records = nodelay_result.flow_records(1)
        created = sorted(r.created_at for r in records)
        gaps = np.diff(created)
        assert np.allclose(gaps, 2.0)

    def test_all_flows_present(self, rcad_result):
        assert rcad_result.flow_ids() == [1, 2, 3, 4]

    def test_hop_counts_match_paper(self, rcad_result):
        by_flow = {
            flow_id: rcad_result.flow_observations(flow_id)[0].hop_count
            for flow_id in rcad_result.flow_ids()
        }
        assert by_flow == {1: 15, 2: 22, 3: 9, 4: 11}
