"""Stable fingerprinting of simulation configurations."""

import numpy as np
import pytest

from repro.runtime.fingerprint import code_salt, stable_fingerprint
from repro.sim.config import SimulationConfig


def _config(**overrides):
    defaults = dict(interarrival=4.0, case="rcad", n_packets=50, seed=0)
    defaults.update(overrides)
    return SimulationConfig.paper_baseline(**defaults)


class TestStableFingerprint:
    def test_deterministic_across_calls(self):
        assert stable_fingerprint(_config()) == stable_fingerprint(_config())

    def test_primitives_and_containers(self):
        value = {"b": [1, 2.5, None], "a": (True, "x")}
        assert stable_fingerprint(value) == stable_fingerprint(
            {"a": (True, "x"), "b": [1, 2.5, None]}
        )

    def test_type_distinctions(self):
        # 1 and 1.0 and True hash differently; lists and tuples differ.
        assert stable_fingerprint(1) != stable_fingerprint(1.0)
        assert stable_fingerprint(1) != stable_fingerprint(True)
        assert stable_fingerprint([1]) != stable_fingerprint((1,))

    def test_ndarray_contents_matter(self):
        a = np.arange(4, dtype=np.float64)
        b = np.arange(4, dtype=np.float64)
        assert stable_fingerprint(a) == stable_fingerprint(b)
        b[0] = -1.0
        assert stable_fingerprint(a) != stable_fingerprint(b)

    def test_seed_changes_fingerprint(self):
        assert stable_fingerprint(_config(seed=0)) != stable_fingerprint(
            _config(seed=1)
        )

    def test_config_parameter_changes_fingerprint(self):
        base = stable_fingerprint(_config())
        assert stable_fingerprint(_config(interarrival=6.0)) != base
        assert stable_fingerprint(_config(case="unlimited")) != base
        assert stable_fingerprint(_config(n_packets=51)) != base

    def test_unhashable_objects_fail_loud(self):
        with pytest.raises(TypeError):
            stable_fingerprint(object())


class TestCodeSalt:
    def test_memoized_and_hexadecimal(self):
        salt = code_salt()
        assert salt == code_salt()
        assert len(salt) == 64
        int(salt, 16)  # raises if not hex
