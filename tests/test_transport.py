"""Fabric TCP transport: framing, backoff, client retransmission, endpoint.

The transport is an access path onto the fabric directory, so these
tests exercise the wire layer in isolation: frame integrity, endpoint
parsing, retry pacing, at-least-once retransmission against a flaky
server, and each endpoint RPC against a real grid directory.
"""

import random
import socket
import threading
import time

import pytest

from repro.runtime.fabric import FabricConfig, ResultsScanner, write_grid
from repro.runtime.journal import encode_cell_entry
from repro.runtime.transport import (
    MAX_FRAME_BYTES,
    TRANSPORT_VERSION,
    Backoff,
    FabricEndpoint,
    FrameError,
    TransportClient,
    TransportDown,
    TransportError,
    decode_frame,
    encode_frame,
    format_endpoint,
    parse_endpoint,
    recv_frame,
    send_frame,
)


class TestEndpointParsing:
    def test_roundtrip(self):
        assert parse_endpoint("example.org:8080") == ("example.org", 8080)
        assert format_endpoint("example.org", 8080) == "example.org:8080"

    def test_ipv6_brackets(self):
        assert parse_endpoint("[::1]:9000") == ("::1", 9000)
        assert format_endpoint("::1", 9000) == "[::1]:9000"

    def test_rejects_missing_port(self):
        with pytest.raises(ValueError, match="host:port"):
            parse_endpoint("just-a-host")

    def test_rejects_empty_host(self):
        with pytest.raises(ValueError, match="empty host"):
            parse_endpoint(":8080")

    def test_rejects_non_numeric_port(self):
        with pytest.raises(ValueError, match="non-numeric port"):
            parse_endpoint("host:http")

    def test_rejects_out_of_range_port(self):
        with pytest.raises(ValueError, match=r"\[1, 65535\]"):
            parse_endpoint("host:70000")
        with pytest.raises(ValueError, match=r"\[1, 65535\]"):
            parse_endpoint("host:0")

    def test_port_zero_needs_opt_in(self):
        assert parse_endpoint("host:0", allow_port_zero=True) == ("host", 0)


class TestFraming:
    def test_roundtrip(self):
        payload = {"op": "hello", "nested": {"a": [1, 2, 3]}, "x": None}
        frame = encode_frame(payload)
        assert decode_frame(frame[4:]) == payload

    def test_checksum_detects_payload_tampering(self):
        frame = encode_frame({"op": "claim", "index": 3})
        # Same length, parsable JSON, different payload bytes.
        tampered = frame.replace(b'"index":3', b'"index":2')
        assert tampered != frame
        with pytest.raises(FrameError, match="checksum"):
            decode_frame(tampered[4:])

    def test_rejects_wrong_version(self):
        import json

        body = json.dumps(
            {"v": TRANSPORT_VERSION + 1, "sha": "0" * 64, "payload": {}}
        ).encode()
        with pytest.raises(FrameError, match="version"):
            decode_frame(body)

    def test_rejects_garbage(self):
        with pytest.raises(FrameError):
            decode_frame(b"\x00\xff not json")

    def test_rejects_non_object_payload(self):
        import json

        body = json.dumps(
            {"v": TRANSPORT_VERSION, "sha": "0" * 64, "payload": [1]}
        ).encode()
        with pytest.raises(FrameError, match="not an object"):
            decode_frame(body)

    def test_socket_roundtrip(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, {"op": "status", "id": 7})
            assert recv_frame(right) == {"op": "status", "id": 7}
        finally:
            left.close()
            right.close()

    def test_truncated_stream_is_frame_error(self):
        left, right = socket.socketpair()
        try:
            frame = encode_frame({"op": "x"})
            left.sendall(frame[: len(frame) // 2])
            left.close()
            with pytest.raises(FrameError, match="mid-frame"):
                recv_frame(right)
        finally:
            right.close()

    def test_oversized_length_prefix_rejected_before_allocation(self):
        left, right = socket.socketpair()
        try:
            left.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(FrameError, match="exceeds"):
                recv_frame(right)
        finally:
            left.close()
            right.close()


class TestBackoff:
    def test_validation(self):
        with pytest.raises(ValueError, match="base must be positive"):
            Backoff(base=0)
        with pytest.raises(ValueError, match="cap"):
            Backoff(base=1.0, cap=0.5)
        with pytest.raises(ValueError, match="factor"):
            Backoff(factor=0.5)
        with pytest.raises(ValueError, match="jitter"):
            Backoff(jitter=1.5)

    def test_delay_grows_and_caps(self):
        backoff = Backoff(base=0.1, cap=1.0, factor=2.0, jitter=0.0)
        rng = random.Random(0)
        delays = [backoff.delay(a, rng) for a in range(8)]
        assert delays[0] == pytest.approx(0.1)
        assert delays[1] == pytest.approx(0.2)
        assert delays == sorted(delays)
        assert delays[-1] == pytest.approx(1.0)

    def test_jitter_stays_within_envelope(self):
        backoff = Backoff(base=0.1, cap=1.0, factor=2.0, jitter=0.5)
        rng = random.Random(1)
        for attempt in range(6):
            raw = min(1.0, 0.1 * 2.0**attempt)
            for _ in range(50):
                delay = backoff.delay(attempt, rng)
                assert raw * 0.5 <= delay <= raw


class _FlakyServer:
    """Accepts TCP connections and answers transport frames, dropping
    the first ``fail_first`` connections right after the request
    arrives (so the client must reconnect and retransmit)."""

    def __init__(self, fail_first=0):
        self.fail_first = fail_first
        self.requests = []
        self.listener = socket.socket()
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(8)
        self.port = self.listener.getsockname()[1]
        self._stop = threading.Event()
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        conn_count = 0
        self.listener.settimeout(0.1)
        while not self._stop.is_set():
            try:
                conn, _ = self.listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn_count += 1
            try:
                while True:
                    request = recv_frame(conn)
                    self.requests.append(request)
                    if conn_count <= self.fail_first:
                        conn.close()
                        break
                    send_frame(
                        conn,
                        {"ok": True, "id": request.get("id"), "echo": request},
                    )
            except (FrameError, OSError):
                pass
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def stop(self):
        self._stop.set()
        self.listener.close()
        self.thread.join(timeout=5.0)


class TestTransportClient:
    def test_retransmits_until_a_connection_survives(self):
        server = _FlakyServer(fail_first=2)
        try:
            client = TransportClient(
                ("127.0.0.1", server.port),
                "w0",
                call_timeout=2.0,
                max_retry_elapsed=30.0,
                backoff=Backoff(base=0.01, cap=0.05),
            )
            response = client.call("ping", value=42)
            client.close()
            assert response["ok"] is True
            assert response["echo"]["value"] == 42
            # Two dropped connections -> two retransmissions of the
            # same request (same id), landed on the third.
            assert client.stats.retransmitted_frames == 2
            assert client.stats.reconnects == 2
            assert [r["id"] for r in server.requests] == [1, 1, 1]
        finally:
            server.stop()

    def test_unreachable_endpoint_raises_transport_down(self):
        # Grab a port nothing listens on.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = TransportClient(
            ("127.0.0.1", port),
            "w0",
            max_retry_elapsed=0.3,
            backoff=Backoff(base=0.01, cap=0.02),
        )
        started = time.monotonic()
        with pytest.raises(TransportDown, match="unreachable"):
            client.call("ping")
        assert time.monotonic() - started < 5.0
        assert client.stats.partitions == 1

    def test_per_call_budget_override(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = TransportClient(
            ("127.0.0.1", port),
            "w0",
            max_retry_elapsed=60.0,
            backoff=Backoff(base=0.01, cap=0.02),
        )
        started = time.monotonic()
        with pytest.raises(TransportDown):
            client.call("ping", max_elapsed=0.2)
        assert time.monotonic() - started < 5.0


def _make_grid(tmp_path, items, lease_ttl=30.0):
    config = FabricConfig(workers=0, lease_ttl=lease_ttl)
    write_grid(tmp_path, "sweep-test", "test", list(items), None, config)


class TestFabricEndpoint:
    @pytest.fixture()
    def served(self, tmp_path):
        _make_grid(tmp_path, range(5))
        endpoint = FabricEndpoint(tmp_path)
        port = endpoint.start()
        client = TransportClient(
            ("127.0.0.1", port), "w0", max_retry_elapsed=5.0
        )
        yield tmp_path, endpoint, client
        client.close()
        endpoint.stop()

    def test_hello_describes_the_grid(self, served):
        _, _, client = served
        hello = client.call("hello")
        assert hello["version"] == TRANSPORT_VERSION
        assert hello["sweep"] == "sweep-test"
        assert hello["n_items"] == 5
        assert hello["lease_ttl"] == pytest.approx(30.0)
        assert "t" in hello

    def test_grid_ships_the_exact_file_lines(self, served):
        tmp_path, _, client = served
        lines = client.call("grid")["lines"]
        on_disk = (tmp_path / "grid.jsonl").read_text().splitlines()
        assert lines == on_disk

    def test_acquire_walks_the_whole_grid(self, served):
        _, endpoint, client = served
        seen = set()
        for _ in range(5):
            response = client.call("acquire")
            assert response["complete"] is False
            index = response["index"]
            seen.add(index)
            entry = encode_cell_entry(index, index * 2)
            entry["worker"] = "w0"
            client.call("upload", entry=entry)
        assert seen == set(range(5))
        final = client.call("acquire")
        assert final["index"] is None
        assert final["complete"] is True

    def test_acquire_re_delivery_returns_the_same_cell(self, served):
        """A lost acquire response replays safely: the worker still
        owns the lease, so the retransmitted acquire lands on the same
        index instead of leaking a second lease."""
        _, _, client = served
        first = client.call("acquire")["index"]
        assert client.call("acquire")["index"] == first

    def test_claim_is_idempotent_for_the_same_worker(self, served):
        _, _, client = served
        assert client.call("claim", index=2)["claimed"] is True
        assert client.call("claim", index=2)["claimed"] is True

    def test_claim_of_live_foreign_lease_fails(self, served):
        tmp_path, endpoint, client = served
        other = TransportClient(
            ("127.0.0.1", endpoint.port), "w1", max_retry_elapsed=5.0
        )
        try:
            assert other.call("claim", index=1)["claimed"] is True
            other.call("heartbeat")
            assert client.call("claim", index=1)["claimed"] is False
        finally:
            other.close()

    def test_claim_out_of_range_is_an_error(self, served):
        _, _, client = served
        with pytest.raises(TransportError, match="out of range"):
            client.call("claim", index=99)

    def test_upload_appends_a_verifiable_journal(self, served):
        tmp_path, _, client = served
        entry = encode_cell_entry(3, {"value": 123})
        entry["worker"] = "w0"
        assert client.call("upload", entry=entry)["deduped"] is False
        scanner = ResultsScanner(tmp_path, 5)
        scanner.scan()
        assert scanner.cells == {3: {"value": 123}}

    def test_duplicate_upload_is_deduplicated(self, served):
        tmp_path, endpoint, client = served
        entry = encode_cell_entry(0, "payload")
        entry["worker"] = "w0"
        assert client.call("upload", entry=entry)["deduped"] is False
        assert client.call("upload", entry=entry)["deduped"] is True
        assert endpoint.stats.uploads_deduped == 1
        journal = (tmp_path / "results" / "w0.jsonl").read_text()
        assert journal.count('"kind": "cell"') == 1

    def test_corrupt_upload_is_rejected(self, served):
        _, _, client = served
        entry = encode_cell_entry(1, "good")
        entry["sha"] = "0" * 64
        with pytest.raises(TransportError):
            client.call("upload", entry=entry)

    def test_heartbeat_writes_server_side_liveness(self, served):
        tmp_path, _, client = served
        response = client.call(
            "heartbeat", cells_done=2, stats={"reconnects": 1}
        )
        assert response["n_items"] == 5
        import json

        payload = json.loads((tmp_path / "workers" / "w0.json").read_text())
        assert payload["via"] == "tcp"
        assert payload["pid"] is None
        assert payload["cells_done"] == 2
        assert payload["transport"] == {"reconnects": 1}

    def test_status_reports_progress(self, served):
        _, _, client = served
        entry = encode_cell_entry(4, 16)
        entry["worker"] = "w0"
        client.call("upload", entry=entry)
        status = client.call("status")
        assert status["done"] == [4]
        assert status["complete"] is False

    def test_unknown_op_is_an_error(self, served):
        _, endpoint, client = served
        with pytest.raises(TransportError, match="unknown op"):
            client.call("frobnicate")
        assert endpoint.stats.unknown_ops == 1

    def test_responses_carry_server_time(self, served):
        _, _, client = served
        before = time.time()
        response = client.call("status")
        after = time.time()
        assert before - 1.0 <= response["t"] <= after + 1.0

    def test_stale_response_ids_are_discarded(self, served):
        """A duplicated frame in flight must not desynchronize RPCs."""
        _, endpoint, client = served
        # Simulate a duplicate by sending one raw request out-of-band
        # on the client's socket, leaving its (unconsumed) response in
        # the stream, then doing a normal RPC through call().
        sock = client._ensure_connected()
        send_frame(sock, {"op": "status", "worker": "w0", "id": 9999})
        response = client.call("status")
        assert response["id"] != 9999
        assert response["ok"] is True

    def test_missing_worker_id_is_an_error(self, served):
        _, _, client = served
        with pytest.raises(TransportError, match="worker id"):
            client.call("acquire", worker=None)

    def test_start_twice_fails(self, served):
        _, endpoint, _ = served
        with pytest.raises(RuntimeError, match="already started"):
            endpoint.start()
