"""Tests for topology serialization."""

import numpy as np
import pytest

from repro.net.routing import greedy_grid_tree, shortest_path_tree
from repro.net.serialization import (
    deployment_from_json,
    deployment_to_json,
    routing_tree_from_json,
    routing_tree_to_json,
)
from repro.net.topology import paper_topology, random_geometric_deployment


class TestDeploymentRoundtrip:
    def test_paper_topology_roundtrip(self):
        original = paper_topology()
        restored = deployment_from_json(deployment_to_json(original))
        assert restored.positions == original.positions
        assert restored.sink == original.sink
        assert restored.radio_range == original.radio_range
        assert restored.labels == dict(original.labels)

    def test_random_deployment_roundtrip(self):
        rng = np.random.Generator(np.random.PCG64(5))
        original = random_geometric_deployment(25, 10.0, 3.5, rng)
        restored = deployment_from_json(deployment_to_json(original))
        assert restored.positions == original.positions
        # Routing over the restored deployment is identical.
        assert dict(shortest_path_tree(restored).parent) == dict(
            shortest_path_tree(original).parent
        )

    def test_serialization_is_deterministic(self):
        deployment = paper_topology()
        assert deployment_to_json(deployment) == deployment_to_json(deployment)

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            deployment_from_json('{"format": "something/else"}')


class TestRoutingTreeRoundtrip:
    def test_tree_roundtrip(self):
        deployment = paper_topology()
        original = greedy_grid_tree(deployment, width=12)
        restored = routing_tree_from_json(routing_tree_to_json(original))
        assert dict(restored.parent) == dict(original.parent)
        assert restored.sink == original.sink
        source = deployment.node_for_label("S2")
        assert restored.hop_count(source) == 22

    def test_restored_tree_is_validated(self):
        """Corrupt parent pointers fail the RoutingTree cycle check."""
        bad = '{"format": "repro/routing-tree/v1", "sink": 0, ' \
              '"parent": {"1": 2, "2": 1}}'
        with pytest.raises(ValueError):
            routing_tree_from_json(bad)

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            routing_tree_from_json('{"format": "repro/deployment/v1"}')
