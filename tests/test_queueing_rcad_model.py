"""Unit tests for the closed-form RCAD node model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.adversary import FlowKnowledge, ModelBasedAdversary
from repro.core.planner import UniformPlanner
from repro.net.packet import PacketObservation
from repro.net.routing import shortest_path_tree
from repro.net.topology import line_deployment
from repro.queueing.erlang import erlang_b
from repro.queueing.mmkk import MMkkQueue
from repro.queueing.rcad_model import RcadNodeModel, predicted_rcad_path_latency
from repro.sim.config import BufferSpec, FlowSpec, SimulationConfig
from repro.sim.simulator import SensorNetworkSimulator
from repro.traffic.generators import PoissonTraffic


class TestRcadNodeModel:
    def test_preemption_probability_is_erlang(self):
        node = RcadNodeModel(arrival_rate=0.5, service_rate=1 / 30, capacity=10)
        assert node.preemption_probability == pytest.approx(erlang_b(15.0, 10))

    def test_light_load_delay_is_advertised_mean(self):
        node = RcadNodeModel(arrival_rate=0.01, service_rate=1 / 30, capacity=10)
        assert node.mean_delay == pytest.approx(30.0, rel=0.01)

    def test_saturated_delay_is_drain_time(self):
        node = RcadNodeModel(arrival_rate=5.0, service_rate=1 / 30, capacity=10)
        assert node.mean_delay == pytest.approx(node.saturated_drain_time(), rel=0.05)
        assert node.saturated_drain_time() == pytest.approx(2.0)

    def test_delay_decreases_with_load(self):
        delays = [
            RcadNodeModel(arrival_rate=rate, service_rate=1 / 30, capacity=10).mean_delay
            for rate in (0.1, 0.3, 1.0, 3.0)
        ]
        assert delays == sorted(delays, reverse=True)

    def test_delay_never_exceeds_advertised_mean(self):
        for rate in (0.01, 0.5, 2.0, 20.0):
            node = RcadNodeModel(arrival_rate=rate, service_rate=1 / 30, capacity=10)
            assert node.mean_delay <= 30.0 + 1e-12

    def test_occupancy_matches_mmkk(self):
        node = RcadNodeModel(arrival_rate=0.5, service_rate=1 / 30, capacity=10)
        bounded = MMkkQueue(arrival_rate=0.5, service_rate=1 / 30, capacity=10)
        for n in (0, 5, 10):
            assert node.occupancy_pmf(n) == pytest.approx(bounded.occupancy_pmf(n))
        assert node.mean_occupancy == pytest.approx(bounded.mean_occupancy)

    def test_throughput_is_lossless(self):
        node = RcadNodeModel(arrival_rate=0.7, service_rate=1 / 30, capacity=4)
        assert node.throughput == 0.7

    def test_littles_law_consistency(self):
        node = RcadNodeModel(arrival_rate=0.5, service_rate=1 / 30, capacity=10)
        assert node.mean_occupancy == pytest.approx(
            node.arrival_rate * node.mean_delay
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            RcadNodeModel(arrival_rate=0.0, service_rate=1.0, capacity=1)
        with pytest.raises(ValueError):
            RcadNodeModel(arrival_rate=1.0, service_rate=0.0, capacity=1)
        with pytest.raises(ValueError):
            RcadNodeModel(arrival_rate=1.0, service_rate=1.0, capacity=0)

    @given(
        st.floats(min_value=0.01, max_value=10.0),
        st.floats(min_value=0.01, max_value=2.0),
        st.integers(min_value=1, max_value=30),
    )
    def test_delay_bracketed_property(self, lam, mu, k):
        """mean delay always lies in [min(1/mu, k/lambda) heuristics'
        envelope]: never above 1/mu, never below ~k/(k+rho)-ish floor;
        concretely: between the saturated drain time scaled and 1/mu."""
        node = RcadNodeModel(arrival_rate=lam, service_rate=mu, capacity=k)
        assert 0.0 < node.mean_delay <= 1.0 / mu + 1e-12


class TestModelAgainstSimulation:
    def _run_one_hop(self, victim_policy, n_packets=6000, seed=11):
        lam, mean_delay, k = 0.5, 30.0, 10
        deployment = line_deployment(hops=1)
        tree = shortest_path_tree(deployment)
        flows = [FlowSpec(flow_id=1, source=0,
                          traffic=PoissonTraffic(lam), n_packets=n_packets)]
        config = SimulationConfig(
            deployment=deployment, tree=tree, flows=flows,
            delay_plan=UniformPlanner(mean_delay).plan(tree, {0: lam}),
            buffers=BufferSpec(
                kind="rcad", capacity=k, victim_policy=victim_policy
            ),
            seed=seed,
        )
        result = SensorNetworkSimulator(config).run()
        # End-to-end latency = buffering delay + 1 transmission.
        return result.mean_latency() - 1.0

    def test_exact_for_residual_independent_victims(self):
        """Random victim choice keeps the occupancy chain M/M/k/k:
        the closed form is exact within simulation noise."""
        from repro.core.victim import RandomVictim

        simulated = self._run_one_hop(RandomVictim())
        node = RcadNodeModel(arrival_rate=0.5, service_rate=1 / 30, capacity=10)
        assert simulated == pytest.approx(node.mean_delay, rel=0.03)

    def test_shortest_remaining_runs_slightly_slower(self):
        """Preempting the minimum residual defers natural expiries:
        simulated delay sits a few percent *above* the closed form."""
        simulated = self._run_one_hop(None)  # default: shortest-remaining
        node = RcadNodeModel(arrival_rate=0.5, service_rate=1 / 30, capacity=10)
        assert node.mean_delay < simulated < 1.2 * node.mean_delay

    def test_path_prediction_matches_simulation(self):
        lam, mean_delay, k, hops = 0.4, 20.0, 5, 4
        deployment = line_deployment(hops=hops)
        tree = shortest_path_tree(deployment)
        flows = [FlowSpec(flow_id=1, source=0,
                          traffic=PoissonTraffic(lam), n_packets=3000)]
        config = SimulationConfig(
            deployment=deployment, tree=tree, flows=flows,
            delay_plan=UniformPlanner(mean_delay).plan(tree, {0: lam}),
            buffers=BufferSpec(kind="rcad", capacity=k), seed=12,
        )
        result = SensorNetworkSimulator(config).run()
        predicted = predicted_rcad_path_latency(
            tree, {0: lam}, source=0, mean_delay=mean_delay, capacity=k
        )
        # Shortest-remaining runs a few percent slow of the closed form.
        assert result.mean_latency() == pytest.approx(predicted, rel=0.15)
        assert result.mean_latency() >= predicted * 0.95

    def test_prediction_validation(self):
        deployment = line_deployment(hops=2)
        tree = shortest_path_tree(deployment)
        with pytest.raises(ValueError):
            predicted_rcad_path_latency(
                tree, {0: 0.5}, source=0, mean_delay=0.0, capacity=10
            )


class TestModelBasedAdversary:
    KNOWLEDGE = FlowKnowledge(
        transmission_delay=1.0, mean_delay_per_hop=30.0,
        buffer_capacity=10, n_sources=4,
    )

    def _obs(self, arrival, origin=103, hops=15):
        return PacketObservation(
            arrival_time=arrival, previous_hop=0, origin=origin,
            routing_seq=0, hop_count=hops,
        )

    def test_estimate_uses_closed_form_delay(self):
        rates = [0.5] * 15
        adversary = ModelBasedAdversary(self.KNOWLEDGE, {103: rates})
        node = RcadNodeModel(arrival_rate=0.5, service_rate=1 / 30, capacity=10)
        expected_extra = 15 * node.mean_delay
        estimate = adversary.estimate(self._obs(1000.0))
        assert estimate == pytest.approx(1000.0 - 15.0 - expected_extra)

    def test_nearly_unbiased_against_rcad(self, rcad_result, paper_tree, paper_deployment):
        from repro.experiments.common import score_flow
        from repro.queueing.tandem import QueueTreeModel

        sources = [paper_deployment.node_for_label(s) for s in ("S1", "S2", "S3", "S4")]
        model = QueueTreeModel(
            parent=dict(paper_tree.parent),
            injection_rates={s: 0.5 for s in sources},
            default_service_rate=1 / 30,
        )
        adversary = ModelBasedAdversary(
            self.KNOWLEDGE,
            {s: [model.arrival_rate(n) for n in paper_tree.path(s)[:-1]]
             for s in sources},
        )
        metrics = score_flow(rcad_result, adversary)
        assert abs(metrics.mean_error) < 80.0  # near-unbiased
        assert metrics.mse > 1_000  # but variance survives: privacy floor

    def test_beats_every_other_adversary(self, rcad_result, paper_tree, paper_deployment):
        from repro.experiments.common import build_adversary, score_flow
        from repro.queueing.tandem import QueueTreeModel

        sources = [paper_deployment.node_for_label(s) for s in ("S1", "S2", "S3", "S4")]
        model = QueueTreeModel(
            parent=dict(paper_tree.parent),
            injection_rates={s: 0.5 for s in sources},
            default_service_rate=1 / 30,
        )
        adversary = ModelBasedAdversary(
            self.KNOWLEDGE,
            {s: [model.arrival_rate(n) for n in paper_tree.path(s)[:-1]]
             for s in sources},
        )
        model_mse = score_flow(rcad_result, adversary).mse
        for kind in ("baseline", "adaptive"):
            other = score_flow(rcad_result, build_adversary(kind, "rcad")).mse
            assert model_mse < other

    def test_unknown_origin_raises(self):
        adversary = ModelBasedAdversary(self.KNOWLEDGE, {103: [0.5]})
        with pytest.raises(KeyError):
            adversary.estimate(self._obs(10.0, origin=7))

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelBasedAdversary(self.KNOWLEDGE, {})
        with pytest.raises(ValueError):
            ModelBasedAdversary(
                FlowKnowledge(mean_delay_per_hop=30.0), {103: [0.5]}
            )
