"""Unit tests for the delay distributions."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.delays import (
    ConstantDelay,
    ErlangDelay,
    ExponentialDelay,
    ParetoDelay,
    UniformDelay,
)
from repro.infotheory.entropy import exponential_entropy


def _rng(seed=0):
    return np.random.Generator(np.random.PCG64(seed))


def _sample_mean(distribution, n=40_000, seed=0):
    rng = _rng(seed)
    return float(np.mean([distribution.sample(rng) for _ in range(n)]))


class TestExponentialDelay:
    def test_mean(self):
        assert ExponentialDelay(rate=1 / 30.0).mean == pytest.approx(30.0)

    def test_from_mean(self):
        assert ExponentialDelay.from_mean(30.0).rate == pytest.approx(1 / 30.0)

    def test_sample_mean_matches(self):
        assert _sample_mean(ExponentialDelay.from_mean(30.0)) == pytest.approx(
            30.0, rel=0.03
        )

    def test_entropy_matches_closed_form(self):
        d = ExponentialDelay(rate=0.2)
        assert d.entropy == pytest.approx(exponential_entropy(0.2))

    def test_scaled(self):
        assert ExponentialDelay.from_mean(10.0).scaled(3.0).mean == pytest.approx(30.0)

    def test_samples_nonnegative(self):
        rng = _rng(1)
        d = ExponentialDelay.from_mean(5.0)
        assert all(d.sample(rng) >= 0 for _ in range(1000))

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialDelay(rate=0.0)
        with pytest.raises(ValueError):
            ExponentialDelay.from_mean(-1.0)
        with pytest.raises(ValueError):
            ExponentialDelay(rate=1.0).scaled(0.0)

    @given(st.floats(min_value=0.01, max_value=1000.0))
    def test_from_mean_roundtrip(self, mean):
        assert ExponentialDelay.from_mean(mean).mean == pytest.approx(mean)


class TestUniformDelay:
    def test_mean(self):
        assert UniformDelay(10.0, 20.0).mean == 15.0

    def test_from_mean_spans_zero_to_twice(self):
        d = UniformDelay.from_mean(30.0)
        assert (d.low, d.high) == (0.0, 60.0)
        assert d.mean == 30.0

    def test_samples_in_range(self):
        rng = _rng(2)
        d = UniformDelay(5.0, 7.0)
        samples = [d.sample(rng) for _ in range(1000)]
        assert all(5.0 <= s <= 7.0 for s in samples)

    def test_entropy(self):
        assert UniformDelay(0.0, math.e).entropy == pytest.approx(1.0)

    def test_scaled(self):
        d = UniformDelay(2.0, 4.0).scaled(2.0)
        assert (d.low, d.high) == (4.0, 8.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformDelay(5.0, 5.0)
        with pytest.raises(ValueError):
            UniformDelay(-1.0, 5.0)


class TestConstantDelay:
    def test_sample_is_constant(self):
        rng = _rng(3)
        d = ConstantDelay(12.0)
        assert {d.sample(rng) for _ in range(10)} == {12.0}

    def test_entropy_is_negative_infinity(self):
        assert ConstantDelay(5.0).entropy == -math.inf

    def test_zero_allowed(self):
        assert ConstantDelay(0.0).mean == 0.0

    def test_scaled(self):
        assert ConstantDelay(5.0).scaled(2.0).value == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantDelay(-1.0)


class TestErlangDelay:
    def test_mean(self):
        assert ErlangDelay(shape=3, rate=0.1).mean == pytest.approx(30.0)

    def test_from_mean(self):
        d = ErlangDelay.from_mean(30.0, shape=5)
        assert d.mean == pytest.approx(30.0)
        assert d.shape == 5

    def test_shape_one_sampling_matches_exponential_mean(self):
        assert _sample_mean(ErlangDelay(shape=1, rate=0.1)) == pytest.approx(
            10.0, rel=0.03
        )

    def test_entropy_below_exponential_at_same_mean(self):
        """Higher shape concentrates the delay -> less entropy."""
        exp_like = ErlangDelay.from_mean(30.0, shape=1)
        concentrated = ErlangDelay.from_mean(30.0, shape=8)
        assert concentrated.entropy < exp_like.entropy

    def test_variance_shrinks_with_shape(self):
        rng = _rng(4)
        wide = np.var([ErlangDelay.from_mean(30.0, 1).sample(rng) for _ in range(5000)])
        narrow = np.var([ErlangDelay.from_mean(30.0, 8).sample(rng) for _ in range(5000)])
        assert narrow < wide

    def test_validation(self):
        with pytest.raises(ValueError):
            ErlangDelay(shape=0, rate=1.0)
        with pytest.raises(ValueError):
            ErlangDelay(shape=2, rate=0.0)


class TestParetoDelay:
    def test_mean(self):
        d = ParetoDelay.from_mean(30.0, shape=2.5)
        assert d.mean == pytest.approx(30.0)

    def test_sample_mean_matches(self):
        assert _sample_mean(ParetoDelay.from_mean(30.0, shape=3.0)) == pytest.approx(
            30.0, rel=0.05
        )

    def test_samples_above_scale(self):
        rng = _rng(6)
        d = ParetoDelay(scale=5.0, shape=2.0)
        assert all(d.sample(rng) >= 5.0 for _ in range(500))

    def test_entropy_below_exponential_at_same_mean(self):
        """Heavy tails do not beat the max-entropy exponential."""
        pareto = ParetoDelay.from_mean(30.0, shape=2.5)
        assert pareto.entropy < ExponentialDelay.from_mean(30.0).entropy

    def test_entropy_matches_monte_carlo(self):
        """Cross-check the closed form against a histogram estimate."""
        d = ParetoDelay(scale=10.0, shape=3.0)
        rng = _rng(7)
        samples = np.array([d.sample(rng) for _ in range(150_000)])
        samples = samples[samples < np.quantile(samples, 0.999)]
        hist, edges = np.histogram(samples, bins=400, density=True)
        widths = np.diff(edges)
        mask = hist > 0
        empirical = -np.sum(hist[mask] * np.log(hist[mask]) * widths[mask])
        assert d.entropy == pytest.approx(empirical, abs=0.1)

    def test_heavier_tail_than_exponential(self):
        """At the same mean, the Pareto's p999 dwarfs the exponential's."""
        rng = _rng(8)
        pareto = ParetoDelay.from_mean(30.0, shape=1.5)
        exponential = ExponentialDelay.from_mean(30.0)
        p_tail = np.quantile([pareto.sample(rng) for _ in range(20000)], 0.999)
        e_tail = np.quantile([exponential.sample(rng) for _ in range(20000)], 0.999)
        assert p_tail > 2 * e_tail

    def test_scaled(self):
        d = ParetoDelay.from_mean(10.0, shape=2.0).scaled(3.0)
        assert d.mean == pytest.approx(30.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ParetoDelay(scale=0.0, shape=2.0)
        with pytest.raises(ValueError):
            ParetoDelay(scale=1.0, shape=1.0)  # infinite mean
        with pytest.raises(ValueError):
            ParetoDelay.from_mean(-1.0)


class TestPolymorphism:
    def test_all_report_mean_and_entropy(self):
        rng = _rng(5)
        for d in (
            ExponentialDelay.from_mean(30.0),
            UniformDelay.from_mean(30.0),
            ConstantDelay(30.0),
            ErlangDelay.from_mean(30.0, shape=3),
        ):
            assert d.mean == pytest.approx(30.0)
            assert isinstance(d.entropy, float)
            assert d.sample(rng) >= 0.0

    def test_exponential_is_max_entropy_at_fixed_mean(self):
        """The paper's design argument, across the implemented families."""
        mean = 30.0
        exp_entropy = ExponentialDelay.from_mean(mean).entropy
        for other in (
            UniformDelay.from_mean(mean),
            ConstantDelay(mean),
            ErlangDelay.from_mean(mean, shape=2),
            ErlangDelay.from_mean(mean, shape=10),
            ParetoDelay.from_mean(mean, shape=1.5),
            ParetoDelay.from_mean(mean, shape=4.0),
        ):
            assert other.entropy <= exp_entropy
