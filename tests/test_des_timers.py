"""Unit tests for the DES timer utilities (BackoffTimer, PeriodicTimer)."""

import pytest

from repro.des.engine import Simulator
from repro.des.timers import BackoffTimer, PeriodicTimer


class TestBackoffTimer:
    def test_fires_at_base_timeout(self):
        sim = Simulator()
        fired = []
        timer = BackoffTimer(sim, base_timeout=3.0)
        timer.start(fired.append, "hello")
        sim.run()
        assert fired == ["hello"]
        assert sim.now == 3.0

    def test_timeout_grows_by_backoff_factor(self):
        sim = Simulator()
        timer = BackoffTimer(sim, base_timeout=2.0, backoff=2.0)
        assert timer.next_timeout() == 2.0
        timer.start(lambda: None)
        assert timer.next_timeout() == 4.0
        timer.start(lambda: None)
        assert timer.next_timeout() == 8.0
        assert timer.armings == 2

    def test_restart_cancels_previous_arming(self):
        sim = Simulator()
        fired = []
        timer = BackoffTimer(sim, base_timeout=5.0, backoff=1.0)
        timer.start(fired.append, "first")
        timer.start(fired.append, "second")
        sim.run()
        assert fired == ["second"]  # the first arming never fires

    def test_cancel_prevents_fire(self):
        sim = Simulator()
        fired = []
        timer = BackoffTimer(sim, base_timeout=1.0)
        timer.start(fired.append, "x")
        assert timer.pending
        assert timer.cancel() is True
        assert not timer.pending
        assert timer.cancel() is False  # nothing left to cancel
        sim.run()
        assert fired == []

    def test_reset_restores_backoff_history(self):
        sim = Simulator()
        timer = BackoffTimer(sim, base_timeout=1.0, backoff=3.0)
        timer.start(lambda: None)
        timer.start(lambda: None)
        assert timer.next_timeout() == 9.0
        timer.reset()
        assert timer.armings == 0
        assert timer.next_timeout() == 1.0
        assert not timer.pending

    def test_not_pending_after_fire(self):
        sim = Simulator()
        timer = BackoffTimer(sim, base_timeout=1.0)
        timer.start(lambda: None)
        sim.run()
        assert not timer.pending

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            BackoffTimer(sim, base_timeout=0.0)
        with pytest.raises(ValueError):
            BackoffTimer(sim, base_timeout=-1.0)
        with pytest.raises(ValueError):
            BackoffTimer(sim, base_timeout=1.0, backoff=0.5)


class TestPeriodicTimer:
    def test_fires_every_interval(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 2.0, lambda: ticks.append(sim.now))
        timer.start()
        sim.run_until(7.0)
        assert ticks == [2.0, 4.0, 6.0]
        assert timer.fired == 3

    def test_stop_cancels_future_firings(self):
        sim = Simulator()
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        timer.start()
        sim.run_until(2.5)
        timer.stop()
        sim.run_until(10.0)
        assert timer.fired == 2
        assert not timer.running

    def test_stop_from_inside_callback(self):
        sim = Simulator()
        timer = PeriodicTimer(sim, 1.0, lambda: timer.stop())
        timer.start()
        sim.run()
        assert timer.fired == 1

    def test_start_is_idempotent(self):
        sim = Simulator()
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        timer.start()
        timer.start()  # no double-scheduling
        sim.run_until(1.5)
        assert timer.fired == 1

    def test_passes_args_to_callback(self):
        sim = Simulator()
        seen = []
        timer = PeriodicTimer(sim, 1.0, seen.append, "tick")
        timer.start()
        sim.run_until(2.5)
        assert seen == ["tick", "tick"]

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicTimer(Simulator(), 0.0, lambda: None)
