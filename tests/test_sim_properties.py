"""Property-based invariants of the WSN simulator (hypothesis).

Randomized line-network configurations must always satisfy the
conservation and ordering laws the rest of the analysis rests on.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.planner import UniformPlanner
from repro.net.routing import shortest_path_tree
from repro.net.topology import line_deployment
from repro.sim.config import BufferSpec, FlowSpec, SimulationConfig
from repro.sim.simulator import SensorNetworkSimulator
from repro.traffic.generators import PeriodicTraffic, PoissonTraffic

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _simulate(hops, n_packets, interval, kind, capacity, mean_delay, seed,
              poisson=False):
    deployment = line_deployment(hops=hops)
    tree = shortest_path_tree(deployment)
    traffic = (
        PoissonTraffic(rate=1.0 / interval)
        if poisson
        else PeriodicTraffic(interval=interval)
    )
    flows = [FlowSpec(flow_id=1, source=0, traffic=traffic, n_packets=n_packets)]
    if kind == "no-delay":
        plan, buffers = None, BufferSpec(kind="infinite")
    else:
        plan = UniformPlanner(mean_delay).plan(tree, {0: 1.0 / interval})
        buffers = (
            BufferSpec(kind=kind, capacity=capacity)
            if kind in ("rcad", "drop-tail")
            else BufferSpec(kind="infinite")
        )
    config = SimulationConfig(
        deployment=deployment, tree=tree, flows=flows,
        delay_plan=plan, buffers=buffers, seed=seed,
    )
    return SensorNetworkSimulator(config).run()


@_SETTINGS
@given(
    hops=st.integers(min_value=1, max_value=8),
    n_packets=st.integers(min_value=1, max_value=60),
    interval=st.floats(min_value=0.5, max_value=20.0),
    capacity=st.integers(min_value=1, max_value=12),
    mean_delay=st.floats(min_value=1.0, max_value=60.0),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_rcad_conserves_packets(hops, n_packets, interval, capacity, mean_delay, seed):
    """RCAD never loses a packet, whatever the configuration."""
    result = _simulate(hops, n_packets, interval, "rcad", capacity, mean_delay, seed)
    assert result.delivered_count() == n_packets
    assert result.drop_count() == 0


@_SETTINGS
@given(
    hops=st.integers(min_value=1, max_value=8),
    n_packets=st.integers(min_value=1, max_value=60),
    interval=st.floats(min_value=0.5, max_value=10.0),
    capacity=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_droptail_conservation(hops, n_packets, interval, capacity, seed):
    """delivered + dropped == offered under drop-tail buffers."""
    result = _simulate(hops, n_packets, interval, "drop-tail", capacity, 30.0, seed)
    assert result.delivered_count() + result.drop_count() == n_packets


@_SETTINGS
@given(
    hops=st.integers(min_value=1, max_value=8),
    n_packets=st.integers(min_value=1, max_value=40),
    interval=st.floats(min_value=0.5, max_value=10.0),
    mean_delay=st.floats(min_value=1.0, max_value=60.0),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_latency_floor(hops, n_packets, interval, mean_delay, seed):
    """No packet beats the physical floor of hops * tau."""
    result = _simulate(
        hops, n_packets, interval, "infinite", None, mean_delay, seed, poisson=True
    )
    assert all(record.latency >= hops - 1e-9 for record in result.records)
    assert all(obs.hop_count == hops for obs in result.observations)


@_SETTINGS
@given(
    hops=st.integers(min_value=1, max_value=6),
    n_packets=st.integers(min_value=2, max_value=40),
    interval=st.floats(min_value=0.5, max_value=10.0),
    capacity=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_observation_stream_sorted_and_aligned(
    hops, n_packets, interval, capacity, seed
):
    """The adversary's stream is arrival-ordered and aligned with
    ground truth."""
    result = _simulate(hops, n_packets, interval, "rcad", capacity, 30.0, seed)
    arrivals = [obs.arrival_time for obs in result.observations]
    assert arrivals == sorted(arrivals)
    assert len(result.observations) == len(result.records)
    for obs, record in zip(result.observations, result.records):
        assert obs.arrival_time == record.delivered_at
        assert record.created_at <= record.delivered_at


@_SETTINGS
@given(
    hops=st.integers(min_value=1, max_value=6),
    n_packets=st.integers(min_value=1, max_value=40),
    interval=st.floats(min_value=0.5, max_value=10.0),
    capacity=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_same_seed_bitwise_reproducible(hops, n_packets, interval, capacity, seed):
    a = _simulate(hops, n_packets, interval, "rcad", capacity, 30.0, seed)
    b = _simulate(hops, n_packets, interval, "rcad", capacity, 30.0, seed)
    assert [r.delivered_at for r in a.records] == [r.delivered_at for r in b.records]
    assert [r.packet_id for r in a.records] == [r.packet_id for r in b.records]


@_SETTINGS
@given(
    hops=st.integers(min_value=2, max_value=6),
    n_packets=st.integers(min_value=5, max_value=40),
    interval=st.floats(min_value=0.5, max_value=4.0),
    capacity=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_preemption_shortens_never_lengthens(hops, n_packets, interval, capacity, seed):
    """RCAD latency never exceeds the same run with infinite buffers'
    *maximum possible* artificial delay plus transmissions -- and the
    preemption counter matches the buffer statistics."""
    result = _simulate(hops, n_packets, interval, "rcad", capacity, 30.0, seed)
    total_preemptions = sum(s.preemptions for s in result.node_stats.values())
    assert total_preemptions == result.total_preemptions()
    preempted_packets = sum(
        1 for r in result.records if r.preemptions_experienced > 0
    )
    assert preempted_packets <= result.delivered_count()
