"""Chaos proxy: plan validation, frame-level fault injection, partitions.

The proxy speaks the transport's own framing, so each fault lands on
exactly one RPC frame; these tests drive a real TransportClient and
FabricEndpoint through it and assert both the injected failures and
the client's recovery.
"""

import time

import pytest

from repro.runtime.chaosnet import ChaosProxy, NetFaultPlan, PartitionWindow
from repro.runtime.fabric import FabricConfig, write_grid
from repro.runtime.transport import (
    Backoff,
    FabricEndpoint,
    TransportClient,
)


class TestPartitionWindow:
    def test_bounds(self):
        window = PartitionWindow(start=1.0, duration=2.0)
        assert window.end == pytest.approx(3.0)
        assert not window.contains(0.5)
        assert window.contains(1.0)
        assert window.contains(2.9)
        assert not window.contains(3.0)

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError, match="start"):
            PartitionWindow(start=-1.0, duration=1.0)

    def test_rejects_non_positive_duration(self):
        with pytest.raises(ValueError, match="duration"):
            PartitionWindow(start=0.0, duration=0.0)


class TestNetFaultPlan:
    def test_noop_by_default(self):
        plan = NetFaultPlan()
        assert plan.is_noop
        assert plan.describe() == "no network faults"

    def test_describe_lists_active_faults(self):
        plan = NetFaultPlan(
            latency=0.01,
            drop_probability=0.1,
            duplicate_probability=0.2,
            reset_probability=0.05,
            partitions=(PartitionWindow(start=1.0, duration=0.5),),
        )
        text = plan.describe()
        assert "drop 10%" in text
        assert "duplicate 20%" in text
        assert "reset 5%" in text
        assert "partition [1s, 1.5s)" in text

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError, match="drop_probability"):
            NetFaultPlan(drop_probability=1.5)
        with pytest.raises(ValueError, match="duplicate_probability"):
            NetFaultPlan(duplicate_probability=-0.1)
        with pytest.raises(ValueError, match="must not exceed 1"):
            NetFaultPlan(drop_probability=0.7, reset_probability=0.7)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError, match="latency"):
            NetFaultPlan(latency=-1.0)

    def test_rejects_overlapping_partitions(self):
        with pytest.raises(ValueError, match="overlap"):
            NetFaultPlan(
                partitions=(
                    PartitionWindow(start=0.0, duration=2.0),
                    PartitionWindow(start=1.0, duration=1.0),
                )
            )

    def test_sorts_partitions(self):
        plan = NetFaultPlan(
            partitions=(
                PartitionWindow(start=5.0, duration=1.0),
                PartitionWindow(start=1.0, duration=1.0),
            )
        )
        assert [w.start for w in plan.partitions] == [1.0, 5.0]


@pytest.fixture()
def served_grid(tmp_path):
    config = FabricConfig(workers=0, lease_ttl=60.0)
    write_grid(tmp_path, "sweep-chaos", "test", list(range(4)), None, config)
    endpoint = FabricEndpoint(tmp_path)
    endpoint.start()
    yield tmp_path, endpoint
    endpoint.stop()


def _client(port, **overrides):
    defaults = dict(
        call_timeout=0.5,
        max_retry_elapsed=20.0,
        backoff=Backoff(base=0.01, cap=0.05),
    )
    defaults.update(overrides)
    return TransportClient(("127.0.0.1", port), "w0", **defaults)


class TestChaosProxy:
    def test_transparent_with_noop_plan(self, served_grid):
        _, endpoint = served_grid
        proxy = ChaosProxy("127.0.0.1", endpoint.port)
        port = proxy.start()
        client = _client(port)
        try:
            hello = client.call("hello")
            assert hello["sweep"] == "sweep-chaos"
            assert client.stats.retransmitted_frames == 0
            assert proxy.stats.frames_forwarded >= 2
            assert proxy.stats.frames_dropped == 0
        finally:
            client.close()
            proxy.stop()

    def test_latency_is_applied_per_frame(self, served_grid):
        _, endpoint = served_grid
        proxy = ChaosProxy(
            "127.0.0.1", endpoint.port, NetFaultPlan(latency=0.05)
        )
        port = proxy.start()
        client = _client(port, call_timeout=5.0)
        try:
            started = time.monotonic()
            client.call("status")
            # Request and response frames are each delayed.
            assert time.monotonic() - started >= 0.1
            assert proxy.stats.delay_seconds >= 0.1
        finally:
            client.close()
            proxy.stop()

    def test_dropped_frames_are_retransmitted(self, served_grid):
        _, endpoint = served_grid
        proxy = ChaosProxy(
            "127.0.0.1", endpoint.port, NetFaultPlan(drop_probability=0.3, seed=1)
        )
        port = proxy.start()
        client = _client(port)
        try:
            for _ in range(10):
                assert client.call("status")["ok"] is True
            assert proxy.stats.frames_dropped > 0
            assert client.stats.retransmitted_frames >= proxy.stats.frames_dropped
        finally:
            client.close()
            proxy.stop()

    def test_duplicate_delivery_does_not_desync_rpcs(self, served_grid):
        _, endpoint = served_grid
        proxy = ChaosProxy(
            "127.0.0.1",
            endpoint.port,
            NetFaultPlan(duplicate_probability=0.5, seed=2),
        )
        port = proxy.start()
        client = _client(port)
        try:
            for index in range(4):
                response = client.call("claim", index=index)
                assert response["claimed"] is True
                assert response["id"] == client._seq
            assert proxy.stats.frames_duplicated > 0
        finally:
            client.close()
            proxy.stop()

    def test_mid_frame_resets_are_survived(self, served_grid):
        _, endpoint = served_grid
        proxy = ChaosProxy(
            "127.0.0.1",
            endpoint.port,
            NetFaultPlan(reset_probability=0.3, seed=3),
        )
        port = proxy.start()
        client = _client(port)
        try:
            for _ in range(10):
                assert client.call("status")["ok"] is True
            assert proxy.stats.resets > 0
            assert client.stats.reconnects >= proxy.stats.resets
        finally:
            client.close()
            proxy.stop()

    def test_partition_severs_and_heals(self, served_grid):
        _, endpoint = served_grid
        proxy = ChaosProxy(
            "127.0.0.1",
            endpoint.port,
            NetFaultPlan(partitions=(PartitionWindow(start=0.3, duration=0.6),)),
        )
        port = proxy.start()
        client = _client(port, call_timeout=0.3)
        try:
            assert client.call("status")["ok"] is True
            time.sleep(0.35)  # inside the window
            assert proxy.in_partition()
            started = time.monotonic()
            # The RPC must stall through the partition, then land.
            assert client.call("status")["ok"] is True
            assert time.monotonic() - started >= 0.3
            assert proxy.stats.partitions_enforced == 1
            assert client.stats.reconnects + client.stats.retransmitted_frames > 0
        finally:
            client.close()
            proxy.stop()

    def test_deterministic_across_runs(self, served_grid):
        """The same plan seed injects the same faults on a replay."""
        _, endpoint = served_grid

        def run_once():
            proxy = ChaosProxy(
                "127.0.0.1",
                endpoint.port,
                NetFaultPlan(drop_probability=0.4, seed=11),
            )
            port = proxy.start()
            client = _client(port)
            try:
                for _ in range(6):
                    client.call("status")
                return proxy.stats.frames_dropped
            finally:
                client.close()
                proxy.stop()

        first = run_once()
        assert first > 0
        # Retransmissions interleave reconnections, so only the first
        # connection's stream is strictly comparable; assert the same
        # seed produces a fault again rather than exact equality.
        assert run_once() > 0
