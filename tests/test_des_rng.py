"""Unit tests for the RNG stream registry."""

import numpy as np
import pytest

from repro.des import RngRegistry


class TestRngRegistry:
    def test_same_name_returns_same_stream(self):
        registry = RngRegistry(seed=1)
        assert registry.stream("a") is registry.stream("a")

    def test_same_seed_and_name_reproduce_draws(self):
        first = RngRegistry(seed=7).stream("traffic").random(10)
        second = RngRegistry(seed=7).stream("traffic").random(10)
        np.testing.assert_array_equal(first, second)

    def test_different_names_give_different_draws(self):
        registry = RngRegistry(seed=7)
        a = registry.stream("a").random(10)
        b = registry.stream("b").random(10)
        assert not np.array_equal(a, b)

    def test_different_seeds_give_different_draws(self):
        a = RngRegistry(seed=1).stream("x").random(10)
        b = RngRegistry(seed=2).stream("x").random(10)
        assert not np.array_equal(a, b)

    def test_creation_order_does_not_matter(self):
        forward = RngRegistry(seed=3)
        forward.stream("a")
        draws_forward = forward.stream("b").random(5)
        backward = RngRegistry(seed=3)
        draws_backward = backward.stream("b").random(5)
        backward.stream("a")
        np.testing.assert_array_equal(draws_forward, draws_backward)

    def test_names_lists_created_streams(self):
        registry = RngRegistry(seed=0)
        registry.stream("one")
        registry.stream("two")
        assert registry.names() == ["one", "two"]

    def test_seed_property(self):
        assert RngRegistry(seed=42).seed == 42

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RngRegistry(seed=0).stream("")

    def test_non_string_name_rejected(self):
        with pytest.raises(ValueError):
            RngRegistry(seed=0).stream(3)  # type: ignore[arg-type]

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngRegistry(seed="zero")  # type: ignore[arg-type]

    def test_streams_are_statistically_decoupled(self):
        """Draw correlations between named streams should be tiny."""
        registry = RngRegistry(seed=5)
        a = registry.stream("left").standard_normal(4000)
        b = registry.stream("right").standard_normal(4000)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.05
