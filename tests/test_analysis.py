"""Unit tests for the analysis plumbing."""

import numpy as np
import pytest

from repro.analysis.records import ExperimentSeries, ExperimentTable
from repro.analysis.stats import bootstrap_ci, summarize
from repro.analysis.sweep import replicate, sweep


class TestSummaryStats:
    def test_mean_and_ci_contain_truth(self, rng):
        samples = rng.normal(10.0, 2.0, size=200)
        stats = summarize(samples)
        assert stats.mean == pytest.approx(10.0, abs=0.5)
        assert stats.ci_low < 10.0 < stats.ci_high
        assert stats.n == 200

    def test_single_sample_degenerates(self):
        stats = summarize([5.0])
        assert stats.mean == stats.ci_low == stats.ci_high == 5.0
        assert stats.std == 0.0

    def test_higher_confidence_wider_interval(self, rng):
        samples = rng.normal(0.0, 1.0, size=50)
        narrow = summarize(samples, confidence=0.8)
        wide = summarize(samples, confidence=0.99)
        assert wide.half_width > narrow.half_width

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize([])
        with pytest.raises(ValueError):
            summarize([1.0], confidence=1.5)


class TestBootstrap:
    def test_ci_contains_mean(self, rng):
        samples = rng.exponential(5.0, size=300)
        low, high = bootstrap_ci(samples, seed=1)
        assert low < samples.mean() < high

    def test_custom_statistic(self, rng):
        samples = rng.normal(0.0, 1.0, size=200)
        low, high = bootstrap_ci(samples, statistic=np.median, seed=2)
        assert low < np.median(samples) < high

    def test_deterministic_given_seed(self, rng):
        samples = rng.normal(0.0, 1.0, size=100)
        assert bootstrap_ci(samples, seed=3) == bootstrap_ci(samples, seed=3)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=0.0)


class TestSeriesAndTable:
    def test_series_validation(self):
        with pytest.raises(ValueError):
            ExperimentSeries("a", [1, 2], [1.0])
        with pytest.raises(ValueError):
            ExperimentSeries("a", [], [])

    def test_value_at(self):
        series = ExperimentSeries("a", [2.0, 4.0], [10.0, 20.0])
        assert series.value_at(4.0) == 20.0
        with pytest.raises(KeyError):
            series.value_at(3.0)

    def test_as_dict(self):
        series = ExperimentSeries("a", [1.0, 2.0], [5.0, 6.0])
        assert series.as_dict() == {1.0: 5.0, 2.0: 6.0}

    def test_table_consistency_enforced(self):
        table = ExperimentTable("t", "x", "y")
        table.add(ExperimentSeries("a", [1.0, 2.0], [0.0, 0.0]))
        with pytest.raises(ValueError):
            table.add(ExperimentSeries("b", [1.0, 3.0], [0.0, 0.0]))

    def test_table_get(self):
        table = ExperimentTable("t", "x", "y")
        table.add(ExperimentSeries("a", [1.0], [0.5]))
        assert table.get("a").value_at(1.0) == 0.5
        with pytest.raises(KeyError):
            table.get("missing")

    def test_render_contains_all_labels_and_values(self):
        table = ExperimentTable("My Figure", "1/lambda", "MSE")
        table.add(ExperimentSeries("NoDelay", [2.0, 4.0], [0.0, 0.0]))
        table.add(ExperimentSeries("RCAD", [2.0, 4.0], [112000.0, 61000.0]))
        text = table.render()
        assert "My Figure" in text
        assert "NoDelay" in text and "RCAD" in text
        assert "1.12e+05" in text
        assert len(text.splitlines()) == 4  # title + header + 2 rows

    def test_render_empty_rejected(self):
        with pytest.raises(ValueError):
            ExperimentTable("t", "x", "y").render()

    def test_x_values_of_empty_rejected(self):
        with pytest.raises(ValueError):
            _ = ExperimentTable("t", "x", "y").x_values


class TestTableSerialization:
    def _table(self):
        table = ExperimentTable("Fig X", "1/lambda", "MSE")
        table.add(ExperimentSeries("a,b", [2.0, 4.0], [1.5, 2.5]))
        table.add(ExperimentSeries("plain", [2.0, 4.0], [10.0, 20.0]))
        return table

    def test_csv_structure(self):
        text = self._table().to_csv()
        lines = text.strip().splitlines()
        assert lines[0] == '1/lambda,"a,b",plain'
        assert lines[1].split(",")[0] == "2.0"
        assert len(lines) == 3

    def test_csv_quotes_embedded_quotes(self):
        table = ExperimentTable("t", 'x "q"', "y")
        table.add(ExperimentSeries("s", [1.0], [2.0]))
        assert '"x ""q"""' in table.to_csv()

    def test_json_roundtrip(self):
        original = self._table()
        restored = ExperimentTable.from_json(original.to_json())
        assert restored.title == original.title
        assert restored.as_dict() == original.as_dict()
        assert [s.label for s in restored.series] == ["a,b", "plain"]

    def test_empty_table_rejected(self):
        empty = ExperimentTable("t", "x", "y")
        with pytest.raises(ValueError):
            empty.to_csv()
        with pytest.raises(ValueError):
            empty.to_json()


class TestSweepAndReplicate:
    def test_sweep_preserves_order(self):
        assert sweep([3.0, 1.0, 2.0], lambda v: v * 10) == [30.0, 10.0, 20.0]

    def test_sweep_empty_rejected(self):
        with pytest.raises(ValueError):
            sweep([], lambda v: v)

    def test_replicate_uses_distinct_seeds(self):
        seen = []
        replicate(4, lambda seed: (seen.append(seed), float(seed))[1], base_seed=100)
        assert seen == [100, 101, 102, 103]

    def test_replicate_summarizes(self):
        stats = replicate(3, lambda seed: float(seed), base_seed=0)
        assert stats.mean == pytest.approx(1.0)
        assert stats.n == 3

    def test_replicate_validation(self):
        with pytest.raises(ValueError):
            replicate(0, lambda seed: 0.0)
