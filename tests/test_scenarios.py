"""Scenario specs, the defense registry, and the matrix runner."""

import json

import numpy as np
import pytest

from repro.defenses import (
    DEFENSES,
    DefenseContext,
    DefenseRegistry,
    UnknownDefenseError,
)
from repro.net.topology import line_deployment
from repro.runtime.context import use_runtime
from repro.runtime.fingerprint import stable_fingerprint
from repro.scenarios import (
    CapacitySpec,
    DefenseSpec,
    ScenarioSpec,
    SourceSpec,
    TopologySpec,
    TrafficSpec,
    example_suite,
    load_suite,
    parse_suite,
    run_suite,
    scenario_cell,
    scenario_cells,
    suite_to_dict,
)
from repro.sim.config import SimulationConfig


def small_spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="t",
        topology=TopologySpec(family="line", n_nodes=6),
        sources=SourceSpec(count=1, placement="far"),
        traffic=(TrafficSpec(model="periodic", interarrival=6.0),),
        defenses=(DefenseSpec(name="rcad"), DefenseSpec(name="no-delay")),
        n_packets=5,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestDefenseRegistry:
    def test_builtin_names(self):
        names = DEFENSES.names()
        assert {"no-delay", "infinite", "drop-tail", "rcad", "phantom"} <= set(
            names
        )
        assert names == sorted(names)
        assert len(names) >= 7

    def test_unknown_defense_lists_available(self):
        with pytest.raises(UnknownDefenseError) as excinfo:
            DEFENSES.create("rcda")
        message = str(excinfo.value)
        assert "rcda" in message
        for name in DEFENSES.names():
            assert name in message
        assert list(excinfo.value.available) == DEFENSES.names()

    def test_bad_parameters_embed_signature(self):
        with pytest.raises(ValueError, match="mean_delay"):
            DEFENSES.create("rcad", mean_dleay=30.0)

    def test_duplicate_registration_rejected(self):
        registry = DefenseRegistry()
        registry.register("x", lambda: None, "one")
        with pytest.raises(ValueError, match="already registered"):
            registry.register("x", lambda: None, "two")

    def test_registry_rcad_matches_paper_baseline(self):
        """The paper's case-3 config rebuilt via the registry is
        fingerprint-identical to ``SimulationConfig.paper_baseline`` --
        the invariant that keeps golden observable digests valid."""
        baseline = SimulationConfig.paper_baseline(
            interarrival=2.0, case="rcad", n_packets=150
        )
        defense = DEFENSES.create("rcad")
        context = DefenseContext(
            deployment=baseline.deployment,
            tree=baseline.tree,
            flow_rates={
                flow.source: flow.traffic.mean_rate()
                for flow in baseline.flows
            },
            capacity=10,
        )
        materialized = defense.materialize(context)
        rebuilt = SimulationConfig(
            deployment=baseline.deployment,
            tree=baseline.tree,
            flows=baseline.flows,
            delay_plan=materialized.delay_plan,
            buffers=materialized.buffers,
            routing_policy=materialized.routing_policy,
            transmission_delay=baseline.transmission_delay,
            seed=baseline.seed,
        )
        assert stable_fingerprint(rebuilt) == stable_fingerprint(baseline)

    def test_unknown_victim_policy_lists_available(self):
        with pytest.raises(ValueError, match="longest-remaining"):
            DEFENSES.create("rcad", victim="fifo")


class TestSpecValidation:
    def test_unknown_family(self):
        with pytest.raises(ValueError, match="random-geometric"):
            TopologySpec(family="torus", n_nodes=10)

    def test_unknown_defense_fails_at_spec_time(self):
        with pytest.raises(UnknownDefenseError):
            small_spec(defenses=(DefenseSpec(name="nope"),))

    def test_duplicate_defense_labels(self):
        with pytest.raises(ValueError, match="disambiguate"):
            small_spec(
                defenses=(
                    DefenseSpec(name="rcad"),
                    DefenseSpec(name="rcad", params={"mean_delay": 10.0}),
                )
            )

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="n_packet"):
            ScenarioSpec.from_dict({"name": "t", "n_packet": 5})

    def test_explicit_sources_validated_against_deployment(self):
        spec = small_spec(
            sources=SourceSpec(placement="explicit", nodes=(99,))
        )
        with pytest.raises(ValueError, match="99"):
            spec.compile()


class TestJsonRoundTrip:
    def test_round_trip_fingerprints_identical(self):
        """spec -> JSON -> spec compiles to fingerprint-identical
        configs (the reproducibility contract for suite files)."""
        for spec in example_suite():
            clone = ScenarioSpec.from_dict(
                json.loads(json.dumps(spec.to_dict()))
            )
            assert clone == spec
            original = spec.compile()
            rebuilt = clone.compile()
            assert len(original) == len(rebuilt)
            for a, b in zip(original, rebuilt):
                assert stable_fingerprint(a.config) == stable_fingerprint(
                    b.config
                )

    def test_suite_round_trip(self, tmp_path):
        path = tmp_path / "suite.json"
        path.write_text(json.dumps(suite_to_dict(example_suite())))
        loaded = load_suite(path)
        assert loaded == example_suite()

    def test_bad_suite_errors_name_the_file(self, tmp_path):
        path = tmp_path / "suite.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="suite.json"):
            load_suite(path)
        path.write_text(json.dumps({"scenarios": []}))
        with pytest.raises(ValueError, match="non-empty"):
            load_suite(path)

    def test_duplicate_scenario_names_rejected(self):
        spec = small_spec().to_dict()
        with pytest.raises(ValueError, match="repeat"):
            parse_suite({"scenarios": [spec, spec]})


class TestCompilation:
    def test_matrix_shape(self):
        spec = small_spec(seeds=(0, 1, 2))
        compiled = spec.compile()
        assert len(compiled) == 2 * 3
        assert {c.defense for c in compiled} == {"rcad", "no-delay"}
        assert {c.seed for c in compiled} == {0, 1, 2}

    def test_cell_filter_matches_full_compile(self):
        spec = small_spec(seeds=(0, 7))
        full = {
            (c.defense, c.seed): stable_fingerprint(c.config)
            for c in spec.compile()
        }
        (one,) = spec.compile(defense_indices=[1], seeds=[7])
        assert one.defense == "no-delay"
        assert full[("no-delay", 7)] == stable_fingerprint(one.config)

    def test_far_placement_picks_deepest_nodes(self):
        spec = small_spec(
            topology=TopologySpec(family="grid", width=4, height=4),
            sources=SourceSpec(count=2, placement="far"),
        )
        (first, *_rest) = spec.compile()
        assert [flow.source for flow in first.config.flows] == [11, 15]

    def test_heterogeneous_capacities_are_deterministic(self):
        capacity = CapacitySpec(base=10, spread=5, seed=3)
        deployment = line_deployment(hops=8)
        per_node = capacity.per_node(deployment)
        assert per_node == capacity.per_node(deployment)
        assert set(per_node) == set(deployment.node_ids) - {deployment.sink}
        assert all(v >= 1 for v in per_node.values())
        assert CapacitySpec(base=10, spread=0).per_node(deployment) is None

    def test_traffic_mix_round_robin(self):
        spec = small_spec(
            topology=TopologySpec(family="grid", width=4, height=4),
            sources=SourceSpec(count=3, placement="far"),
            traffic=(
                TrafficSpec(model="periodic", interarrival=6.0),
                TrafficSpec(model="poisson", interarrival=8.0),
            ),
        )
        (first, *_rest) = spec.compile()
        models = [type(f.traffic).__name__ for f in first.config.flows]
        assert models == [
            "PeriodicTraffic", "PoissonTraffic", "PeriodicTraffic",
        ]

    def test_phantom_configs_do_not_share_policy_state(self):
        spec = small_spec(
            defenses=(DefenseSpec(name="phantom"),), seeds=(0, 1)
        )
        a, b = spec.compile()
        assert a.config.routing_policy is not b.config.routing_policy


class TestRunner:
    def test_cells_are_pure_json(self):
        cells = scenario_cells([small_spec()])
        assert cells == json.loads(json.dumps(cells))
        assert len(cells) == 2

    def test_run_suite_serial_matches_cell_by_cell(self):
        spec = small_spec()
        with use_runtime(jobs=1, cache=None):
            summaries = run_suite([spec])
            direct = [scenario_cell(c) for c in scenario_cells([spec])]
        assert [s.to_dict() for s in summaries] == direct
        by_defense = {s.defense: s for s in summaries}
        assert by_defense["no-delay"].mse == 0.0
        assert by_defense["rcad"].mse > 0.0
        assert by_defense["rcad"].delivery_rate == 1.0

    def test_scenario_cell_importable_by_name(self):
        """The fabric imports the cell fn as ``module:qualname``."""
        import importlib

        module = importlib.import_module("repro.scenarios.runner")
        assert getattr(module, "scenario_cell") is scenario_cell


class TestRoutingRegressions:
    def test_greedy_grid_tree_rejects_scrambled_ids(self):
        """Node ids that are not row-major used to silently produce a
        tree pointing at the wrong nodes; now a ValueError names the
        offending node."""
        from repro.net.routing import greedy_grid_tree
        from repro.net.topology import Deployment

        deployment = Deployment(
            positions={0: (1.0, 0.0), 1: (0.0, 0.0), 2: (0.0, 1.0),
                       3: (1.0, 1.0)},
            radio_range=1.1,
            sink=1,
        )
        with pytest.raises(ValueError, match="row-major"):
            greedy_grid_tree(deployment, width=2)

    def test_random_geometric_accepts_int_seed(self):
        from repro.net.topology import random_geometric_deployment

        dep1 = random_geometric_deployment(
            n_nodes=30, area_side=6.0, radio_range=2.0, rng=42
        )
        dep2 = random_geometric_deployment(
            n_nodes=30, area_side=6.0, radio_range=2.0,
            rng=np.random.default_rng(42),
        )
        assert dep1.positions == dep2.positions

    def test_random_geometric_failure_reports_density(self):
        from repro.net.topology import random_geometric_deployment

        with pytest.raises(RuntimeError, match="nodes per unit area"):
            random_geometric_deployment(
                n_nodes=5, area_side=100.0, radio_range=0.5,
                rng=0, max_attempts=2,
            )


class TestPerNodeCapacity:
    def test_per_node_capacity_serial_matches_fastpath(self):
        """Heterogeneous buffers run identically through the event
        engine and the vectorized fastpath."""
        import os

        from repro.runtime.context import run_simulation
        from repro.sim.config import BufferSpec

        spec = small_spec(
            capacity=CapacitySpec(base=3, spread=2, seed=1),
            defenses=(DefenseSpec(name="rcad"),),
            n_packets=30,
            traffic=(TrafficSpec(model="periodic", interarrival=2.0),),
        )
        (compiled,) = spec.compile()
        buffers = compiled.config.buffers
        assert isinstance(buffers, BufferSpec)
        assert buffers.per_node_capacity
        with use_runtime(jobs=1, cache=None):
            fast = run_simulation(compiled.config)
            os.environ["REPRO_FASTPATH"] = "0"
            try:
                slow = run_simulation(compiled.config)
            finally:
                os.environ.pop("REPRO_FASTPATH")
        assert fast.records == slow.records
        assert [o.arrival_time for o in fast.observations] == [
            o.arrival_time for o in slow.observations
        ]
