"""Unit tests for the traffic generators."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.queueing.poisson import interarrival_cv2
from repro.traffic.generators import (
    JitteredPeriodicTraffic,
    MMPPTraffic,
    OnOffTraffic,
    PeriodicTraffic,
    PoissonTraffic,
    TraceTraffic,
)


def _rng(seed=0):
    return np.random.Generator(np.random.PCG64(seed))


class TestPeriodic:
    def test_exact_times(self):
        times = PeriodicTraffic(interval=2.0).creation_times(4, _rng())
        np.testing.assert_allclose(times, [2.0, 4.0, 6.0, 8.0])

    def test_custom_phase(self):
        times = PeriodicTraffic(interval=2.0, phase=0.5).creation_times(3, _rng())
        np.testing.assert_allclose(times, [0.5, 2.5, 4.5])

    def test_mean_rate(self):
        assert PeriodicTraffic(interval=4.0).mean_rate() == 0.25

    def test_zero_packets(self):
        assert PeriodicTraffic(interval=1.0).creation_times(0, _rng()).size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicTraffic(interval=0.0)
        with pytest.raises(ValueError):
            PeriodicTraffic(interval=1.0, phase=-1.0)
        with pytest.raises(ValueError):
            PeriodicTraffic(interval=1.0).creation_times(-1, _rng())

    @given(
        st.floats(min_value=0.01, max_value=100.0),
        st.integers(min_value=1, max_value=200),
    )
    def test_gaps_equal_interval_property(self, interval, n):
        times = PeriodicTraffic(interval=interval).creation_times(n, _rng())
        if n > 1:
            np.testing.assert_allclose(np.diff(times), interval, rtol=1e-9)


class TestPoisson:
    def test_mean_gap(self):
        times = PoissonTraffic(rate=0.5).creation_times(20_000, _rng())
        gaps = np.diff(np.concatenate([[0.0], times]))
        assert gaps.mean() == pytest.approx(2.0, rel=0.05)

    def test_cv2_near_one(self):
        times = PoissonTraffic(rate=1.0).creation_times(20_000, _rng(1))
        assert interarrival_cv2(times) == pytest.approx(1.0, abs=0.05)

    def test_sorted_and_positive(self):
        times = PoissonTraffic(rate=1.0).creation_times(100, _rng(2))
        assert np.all(np.diff(times) >= 0)
        assert np.all(times > 0)

    def test_mean_rate(self):
        assert PoissonTraffic(rate=0.3).mean_rate() == 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonTraffic(rate=0.0)


class TestJitteredPeriodic:
    def test_preserves_order(self):
        model = JitteredPeriodicTraffic(interval=2.0, jitter=0.9)
        times = model.creation_times(500, _rng(3))
        assert np.all(np.diff(times) > 0)

    def test_zero_jitter_is_periodic(self):
        times = JitteredPeriodicTraffic(interval=2.0, jitter=0.0).creation_times(
            4, _rng()
        )
        np.testing.assert_allclose(times, [2.0, 4.0, 6.0, 8.0])

    def test_mean_rate(self):
        assert JitteredPeriodicTraffic(interval=5.0, jitter=1.0).mean_rate() == 0.2

    def test_jitter_bounds(self):
        model = JitteredPeriodicTraffic(interval=2.0, jitter=0.5)
        times = model.creation_times(1000, _rng(4))
        base = 2.0 + 2.0 * np.arange(1000)
        assert np.all(np.abs(times - base) <= 0.5 + 1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            JitteredPeriodicTraffic(interval=2.0, jitter=1.0)  # >= interval/2
        with pytest.raises(ValueError):
            JitteredPeriodicTraffic(interval=0.0, jitter=0.0)


class TestOnOff:
    def test_burstier_than_poisson(self):
        model = OnOffTraffic(burst_rate=1.0, mean_on=10.0, mean_off=100.0)
        times = model.creation_times(4000, _rng(5))
        assert interarrival_cv2(times) > 2.0

    def test_mean_rate_duty_cycle(self):
        model = OnOffTraffic(burst_rate=2.0, mean_on=10.0, mean_off=30.0)
        assert model.mean_rate() == pytest.approx(0.5)

    def test_zero_off_is_pure_poisson_rate(self):
        model = OnOffTraffic(burst_rate=2.0, mean_on=10.0, mean_off=0.0)
        assert model.mean_rate() == pytest.approx(2.0)

    def test_long_run_rate_matches(self):
        model = OnOffTraffic(burst_rate=1.0, mean_on=20.0, mean_off=20.0)
        times = model.creation_times(20_000, _rng(6))
        empirical_rate = times.size / times[-1]
        assert empirical_rate == pytest.approx(model.mean_rate(), rel=0.1)

    def test_requested_count(self):
        model = OnOffTraffic(burst_rate=1.0, mean_on=5.0, mean_off=5.0)
        assert model.creation_times(137, _rng(7)).size == 137

    def test_validation(self):
        with pytest.raises(ValueError):
            OnOffTraffic(burst_rate=0.0, mean_on=1.0, mean_off=1.0)
        with pytest.raises(ValueError):
            OnOffTraffic(burst_rate=1.0, mean_on=0.0, mean_off=1.0)


class TestMMPP:
    def test_mean_rate_two_state_symmetric(self):
        model = MMPPTraffic(rates=[0.2, 1.8], mean_holding=[10.0, 10.0])
        assert model.mean_rate() == pytest.approx(1.0)

    def test_mean_rate_weighted_by_holding(self):
        model = MMPPTraffic(rates=[0.0, 2.0], mean_holding=[30.0, 10.0])
        assert model.mean_rate() == pytest.approx(0.5)

    def test_long_run_rate_matches(self):
        model = MMPPTraffic(rates=[0.2, 1.8], mean_holding=[20.0, 20.0])
        times = model.creation_times(20_000, _rng(8))
        assert times.size / times[-1] == pytest.approx(1.0, rel=0.12)

    def test_burstier_than_poisson(self):
        model = MMPPTraffic(rates=[0.05, 3.0], mean_holding=[50.0, 50.0])
        times = model.creation_times(5000, _rng(9))
        assert interarrival_cv2(times) > 1.5

    def test_sorted(self):
        model = MMPPTraffic(rates=[0.5, 1.5], mean_holding=[5.0, 5.0])
        times = model.creation_times(500, _rng(10))
        assert np.all(np.diff(times) >= 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MMPPTraffic(rates=[1.0], mean_holding=[1.0])
        with pytest.raises(ValueError):
            MMPPTraffic(rates=[1.0, 2.0], mean_holding=[1.0])
        with pytest.raises(ValueError):
            MMPPTraffic(rates=[1.0, -2.0], mean_holding=[1.0, 1.0])
        with pytest.raises(ValueError):
            MMPPTraffic(
                rates=[1.0, 2.0], mean_holding=[1.0, 1.0], transition=np.ones((3, 3))
            )


class TestTrace:
    def test_replays_prefix(self):
        model = TraceTraffic([5.0, 1.0, 3.0])
        np.testing.assert_allclose(model.creation_times(2, _rng()), [1.0, 3.0])

    def test_exhausting_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceTraffic([1.0]).creation_times(2, _rng())

    def test_mean_rate_from_span(self):
        assert TraceTraffic([0.0, 1.0, 2.0, 3.0]).mean_rate() == pytest.approx(1.0)

    def test_single_point_rate_zero(self):
        assert TraceTraffic([5.0]).mean_rate() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceTraffic([])
        with pytest.raises(ValueError):
            TraceTraffic([-1.0, 2.0])


class TestMarkovOnOff:
    def _model(self, **kwargs):
        from repro.traffic import MarkovOnOffTraffic

        defaults = dict(burst_rate=10.0, mean_on=5.0, mean_off=15.0)
        defaults.update(kwargs)
        return MarkovOnOffTraffic(**defaults)

    def test_mean_rate_duty_cycle(self):
        model = self._model()
        assert model.mean_rate() == pytest.approx(10.0 * 5.0 / 20.0)

    def test_mean_rate_with_baseline(self):
        model = self._model(base_rate=1.0)
        duty = 5.0 / 20.0
        assert model.mean_rate() == pytest.approx(10.0 * duty + 1.0 * (1 - duty))

    def test_long_run_rate_matches(self):
        model = self._model()
        times = model.creation_times(6000, _rng(3))
        realized = (len(times) - 1) / (times[-1] - times[0])
        assert realized == pytest.approx(model.mean_rate(), rel=0.15)

    def test_burstier_than_poisson(self):
        # Squared coefficient of variation of the gaps must exceed the
        # Poisson value of 1: that is what "bursty" means.
        model = self._model()
        gaps = np.diff(model.creation_times(6000, _rng(4)))
        cv2 = gaps.var() / gaps.mean() ** 2
        assert cv2 > 1.5

    def test_sorted_strictly_increasing(self):
        times = self._model().creation_times(500, _rng(5))
        assert np.all(np.diff(times) > 0)

    def test_stream_matches_batch(self):
        # iter_gaps and creation_times consume the RNG identically, so
        # a streamed prefix equals the batch output for equal seeds.
        import itertools

        model = self._model(base_rate=0.5)
        batch = model.creation_times(200, _rng(6))
        streamed = np.cumsum(list(itertools.islice(model.iter_gaps(_rng(6)), 200)))
        np.testing.assert_allclose(streamed, batch)

    def test_stream_is_unbounded(self):
        gaps = self._model().iter_gaps(_rng(7))
        drawn = [next(gaps) for _ in range(1000)]
        assert min(drawn) > 0

    def test_zero_packets(self):
        assert self._model().creation_times(0, _rng()).size == 0

    def test_validation(self):
        from repro.traffic import MarkovOnOffTraffic

        with pytest.raises(ValueError):
            MarkovOnOffTraffic(burst_rate=0.0, mean_on=1.0, mean_off=1.0)
        with pytest.raises(ValueError):
            MarkovOnOffTraffic(burst_rate=1.0, mean_on=0.0, mean_off=1.0)
        with pytest.raises(ValueError):
            MarkovOnOffTraffic(burst_rate=1.0, mean_on=1.0, mean_off=0.0)
        with pytest.raises(ValueError):
            MarkovOnOffTraffic(burst_rate=1.0, mean_on=1.0, mean_off=1.0, base_rate=1.0)
        with pytest.raises(ValueError):
            MarkovOnOffTraffic(
                burst_rate=1.0, mean_on=1.0, mean_off=1.0, base_rate=-0.1
            )
