"""Calendar-queue engine regressions: NaN guard, O(1) counters, compaction.

The rewrite of :mod:`repro.des.engine` (per-node event lanes feeding a
small top-level heap) came with three behavioural commitments beyond
raw speed, each pinned here:

* ``schedule`` rejects NaN *before* the in-the-past comparison -- NaN
  compares false against everything, so the old check order would let
  it slip into the heap and corrupt event ordering far from the bug;
* ``pending_count`` is maintained incrementally (O(1)), never by
  scanning heaps, so ``__repr__`` and monitoring loops stay cheap on
  million-event calendars;
* cancellation tombstones are compacted per lane, bounding memory under
  sustained RCAD preemption churn while keeping ``events_skipped``
  equal to the total number of cancellations once the calendar drains.
"""

from __future__ import annotations

import math

import pytest

from repro.des.engine import Simulator
from repro.des.errors import SchedulingInPastError


class TestNanRejectedBeforePastCheck:
    def test_nan_raises_value_error_not_in_past(self):
        # start_time > 0 makes the in-the-past branch reachable: NaN
        # compares false to now, so a past-check-first ordering would
        # accept the event instead of raising.
        sim = Simulator(start_time=100.0)
        with pytest.raises(ValueError, match="NaN") as excinfo:
            sim.schedule(float("nan"), lambda: None)
        assert not isinstance(excinfo.value, SchedulingInPastError)
        assert sim.pending_count == 0
        assert sim.peek() == math.inf

    def test_nan_delay_via_schedule_after(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(ValueError, match="NaN"):
            sim.schedule_after(float("nan"), lambda: None)

    def test_past_events_still_rejected(self):
        sim = Simulator(start_time=100.0)
        with pytest.raises(SchedulingInPastError):
            sim.schedule(99.0, lambda: None)


class TestLivePendingCounter:
    def test_counts_schedule_cancel_and_fire(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        assert sim.pending_count == 10
        handles[3].cancel()
        handles[7].cancel()
        assert sim.pending_count == 8
        handles[3].cancel()  # double-cancel is a no-op
        assert sim.pending_count == 8
        sim.step()
        assert sim.pending_count == 7
        sim.run()
        assert sim.pending_count == 0

    def test_counter_is_not_derived_from_heap_scans(self):
        """Tombstones sit in the lane heaps; the live counter must not
        see them.  ``heap_size`` (which deliberately *does* include
        tombstones) differing from ``pending_count`` proves the count
        is maintained incrementally rather than recomputed."""
        sim = Simulator()
        handles = [
            sim.schedule(float(i + 1), lambda: None, lane="n") for i in range(8)
        ]
        for handle in handles[:4]:
            handle.cancel()
        assert sim.pending_count == 4
        assert sim.heap_size > sim.pending_count  # garbage still enqueued

    def test_repr_reports_live_count(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        handle = sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert "pending=1" in repr(sim)


class TestLaneCompaction:
    def test_heap_stays_bounded_under_cancel_churn(self):
        """Schedule/cancel cycles in one lane (the RCAD preemption
        pattern) must not grow the lane heap without bound."""
        sim = Simulator()
        cancelled = 0
        live = []
        for i in range(5000):
            handle = sim.schedule(float(i + 1), lambda: None, lane="node-3")
            if i % 10 == 9:
                live.append(handle)
            else:
                handle.cancel()
                cancelled += 1
        # 4500 tombstones were created; compaction must have discarded
        # almost all of them (threshold: dead <= max(64, live entries)).
        assert sim.pending_count == len(live) == 500
        assert sim.heap_size <= 2 * sim.pending_count + Simulator.COMPACT_MIN_DEAD
        sim.run()
        assert sim.events_skipped == cancelled
        assert sim.events_processed == len(live)

    def test_compaction_preserves_firing_order(self):
        sim = Simulator()
        fired = []
        handles = []
        for i in range(1000):
            when = float(1 + (i * 37) % 1000)  # scrambled insertion order
            handles.append(sim.schedule(when, fired.append, when, lane="a"))
        for i, handle in enumerate(handles):
            if i % 5 != 0:
                handle.cancel()
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == sum(1 for i in range(1000) if i % 5 == 0)

    def test_skipped_ratio_bounded_under_rcad_preemption(self):
        """End-to-end churn check: a heavily loaded RCAD run cancels a
        release for every preemption; at drain, skipped == preemptions
        and the calendar ends empty."""
        from repro.sim.config import SimulationConfig
        from repro.sim.simulator import SensorNetworkSimulator

        config = SimulationConfig.paper_baseline(
            interarrival=2.0, case="rcad", n_packets=200
        )
        sim = SensorNetworkSimulator(config)
        # Drive the event-driven engine directly (the vectorized fast
        # path has no calendar to inspect).
        sim._ran = True
        sim._schedule_creations()
        sim._sim.run_until(config.max_sim_time)
        sim._finalize()
        engine = sim._sim
        preemptions = sim._result.total_preemptions()
        assert preemptions > 0  # the workload must actually churn
        assert engine.events_skipped == preemptions
        assert engine.pending_count == 0
        assert engine.heap_size == 0
        assert (
            engine.events_processed
            == engine.events_scheduled - engine.events_skipped
        )
