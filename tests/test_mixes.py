"""Unit tests for the mix-network substrate."""

import math

import numpy as np
import pytest

from repro.mixes.designs import (
    MixOutput,
    PoolMix,
    StopAndGoMix,
    ThresholdMix,
    TimedMix,
)
from repro.mixes.metrics import (
    mean_latency,
    sender_anonymity_entropy,
    sg_linkage_entropy,
    temporal_mse,
)


def _rng(seed=0):
    return np.random.Generator(np.random.PCG64(seed))


ARRIVALS = np.array([1.0, 2.0, 3.0, 4.5, 6.0, 7.0, 8.0, 9.5, 11.0, 12.0])


class TestThresholdMix:
    def test_batches_of_n_depart_together(self):
        output = ThresholdMix(batch_size=3).transform(ARRIVALS, _rng())
        assert np.all(output.departure_times[0:3] == ARRIVALS[2])
        assert np.all(output.departure_times[3:6] == ARRIVALS[5])
        assert np.all(output.batch_ids[0:3] == 0)
        assert np.all(output.batch_ids[3:6] == 1)

    def test_partial_final_batch_flushed_at_end(self):
        output = ThresholdMix(batch_size=4).transform(ARRIVALS, _rng())
        # 10 messages: batches of 4, 4, then 2 flushed at the last arrival.
        assert np.all(output.departure_times[8:] == ARRIVALS[-1])

    def test_no_departure_before_arrival(self):
        output = ThresholdMix(batch_size=5).transform(ARRIVALS, _rng())
        assert np.all(output.departure_times >= output.arrival_times)

    def test_batch_one_is_immediate(self):
        output = ThresholdMix(batch_size=1).transform(ARRIVALS, _rng())
        np.testing.assert_allclose(output.departure_times, ARRIVALS)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdMix(batch_size=0)
        with pytest.raises(ValueError):
            ThresholdMix(2).transform(np.array([3.0, 1.0]), _rng())
        with pytest.raises(ValueError):
            ThresholdMix(2).transform(np.array([]), _rng())


class TestTimedMix:
    def test_departures_on_ticks(self):
        output = TimedMix(interval=5.0).transform(ARRIVALS, _rng())
        assert set(np.mod(output.departure_times, 5.0)) == {0.0}
        assert np.all(output.departure_times >= output.arrival_times)

    def test_same_tick_same_batch(self):
        output = TimedMix(interval=5.0).transform(ARRIVALS, _rng())
        # Arrivals 1..4.5 leave at t=5 together.
        assert len(set(output.batch_ids[0:4])) == 1

    def test_arrival_exactly_on_tick(self):
        output = TimedMix(interval=2.0).transform(np.array([2.0, 3.0]), _rng())
        assert output.departure_times[0] == 2.0
        assert output.departure_times[1] == 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TimedMix(interval=0.0)


class TestPoolMix:
    def test_pool_messages_survive_flush(self):
        output = PoolMix(batch_size=4, pool_size=1).transform(ARRIVALS, _rng(1))
        # First flush at the 4th arrival: exactly 3 leave.
        first_flush = np.sum(output.departure_times == ARRIVALS[3])
        assert first_flush == 3

    def test_everything_eventually_departs(self):
        output = PoolMix(batch_size=3, pool_size=2).transform(ARRIVALS, _rng(2))
        assert not np.any(np.isnan(output.departure_times))
        assert np.all(output.batch_ids >= 0)

    def test_zero_pool_degenerates_to_threshold(self):
        pool = PoolMix(batch_size=3, pool_size=0).transform(ARRIVALS, _rng(3))
        threshold = ThresholdMix(batch_size=3).transform(ARRIVALS, _rng(4))
        np.testing.assert_allclose(pool.departure_times, threshold.departure_times)

    def test_pool_increases_mean_latency(self):
        no_pool = PoolMix(4, 0).transform(ARRIVALS, _rng(5))
        with_pool = PoolMix(4, 2).transform(ARRIVALS, _rng(5))
        assert mean_latency(with_pool) >= mean_latency(no_pool)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoolMix(batch_size=3, pool_size=3)
        with pytest.raises(ValueError):
            PoolMix(batch_size=0, pool_size=0)


class TestStopAndGoMix:
    def test_mean_latency_matches_parameter(self):
        arrivals = np.sort(_rng(6).uniform(0, 1000, size=5000))
        output = StopAndGoMix(mean_delay=30.0).transform(arrivals, _rng(7))
        assert mean_latency(output) == pytest.approx(30.0, rel=0.05)

    def test_each_message_individually_timed(self):
        output = StopAndGoMix(30.0).transform(ARRIVALS, _rng(8))
        assert len(set(output.batch_ids.tolist())) == ARRIVALS.size

    def test_reordering_occurs(self):
        arrivals = np.arange(200, dtype=float)
        output = StopAndGoMix(mean_delay=10.0).transform(arrivals, _rng(9))
        assert np.any(np.diff(output.departure_times) < 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            StopAndGoMix(mean_delay=0.0)


class TestMixOutputContract:
    def test_premature_departure_rejected(self):
        with pytest.raises(ValueError):
            MixOutput(
                arrival_times=np.array([5.0]),
                departure_times=np.array([4.0]),
                batch_ids=np.array([0]),
            )

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ValueError):
            MixOutput(
                arrival_times=np.array([1.0, 2.0]),
                departure_times=np.array([1.0]),
                batch_ids=np.array([0, 0]),
            )

    def test_batch_members(self):
        output = ThresholdMix(3).transform(ARRIVALS, _rng())
        np.testing.assert_array_equal(output.batch_members(0), [0, 1, 2])


class TestAnonymityMetrics:
    def test_threshold_entropy_is_log_batch(self):
        output = ThresholdMix(batch_size=5).transform(ARRIVALS, _rng())
        assert sender_anonymity_entropy(output) == pytest.approx(math.log(5))

    def test_individual_timing_scores_zero_set_entropy(self):
        output = StopAndGoMix(30.0).transform(ARRIVALS, _rng())
        assert sender_anonymity_entropy(output) == 0.0

    def test_sg_linkage_entropy_positive_under_load(self):
        arrivals = np.sort(_rng(10).uniform(0, 100, size=400))
        output = StopAndGoMix(mean_delay=30.0).transform(arrivals, _rng(11))
        assert sg_linkage_entropy(output, mean_delay=30.0) > 1.0

    def test_sg_linkage_entropy_grows_with_delay(self):
        arrivals = np.sort(_rng(12).uniform(0, 200, size=400))
        short = StopAndGoMix(1.0).transform(arrivals, _rng(13))
        long = StopAndGoMix(50.0).transform(arrivals, _rng(13))
        assert sg_linkage_entropy(long, 50.0) > sg_linkage_entropy(short, 1.0)

    def test_sg_linkage_validation(self):
        output = StopAndGoMix(30.0).transform(ARRIVALS, _rng())
        with pytest.raises(ValueError):
            sg_linkage_entropy(output, mean_delay=0.0)


class TestTemporalMetrics:
    def test_temporal_mse_is_latency_variance(self):
        output = StopAndGoMix(30.0).transform(
            np.sort(_rng(14).uniform(0, 1000, size=3000)), _rng(15)
        )
        # Exp(30) variance = 900.
        assert temporal_mse(output) == pytest.approx(900.0, rel=0.1)

    def test_constant_latency_mix_has_zero_temporal_mse(self):
        output = MixOutput(
            arrival_times=ARRIVALS,
            departure_times=ARRIVALS + 7.0,
            batch_ids=np.zeros(ARRIVALS.size, dtype=int),
        )
        assert temporal_mse(output) == 0.0

    def test_mean_latency(self):
        output = MixOutput(
            arrival_times=ARRIVALS,
            departure_times=ARRIVALS + 3.0,
            batch_ids=np.zeros(ARRIVALS.size, dtype=int),
        )
        assert mean_latency(output) == pytest.approx(3.0)
