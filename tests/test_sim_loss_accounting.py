"""Loss accounting: `lost_in_transit` books and occupancy-time integrals.

Satellite coverage for the fault PR: the simulator's per-node loss
ledger must partition the global loss count, and the occupancy-time
integral (the queueing-theory workhorse behind the Section 4
validations) must remain exact even when packets die on the air
mid-path.
"""

import dataclasses
from collections import defaultdict

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.simulator import SensorNetworkSimulator


def _run(loss, n_packets=80, seed=13, **overrides):
    config = SimulationConfig.paper_baseline(
        interarrival=4.0, case="rcad", n_packets=n_packets, seed=seed
    )
    config = dataclasses.replace(
        config, link_loss_probability=loss, **overrides
    )
    return config, SensorNetworkSimulator(config).run()


class TestLostInTransitLedger:
    def test_zero_loss_books_nothing(self):
        _, result = _run(0.0)
        assert result.lost_in_transit == 0
        assert result.loss_by_node() == {}

    def test_loss_by_node_partitions_the_total(self):
        _, result = _run(0.08)
        by_node = result.loss_by_node()
        assert result.lost_in_transit > 0
        assert sum(by_node.values()) == result.lost_in_transit
        # The dict only names nodes that actually lost something.
        assert all(count > 0 for count in by_node.values())

    def test_losing_nodes_lie_on_flow_paths(self):
        config, result = _run(0.08)
        sources = [flow.source for flow in config.flows]
        on_flows = config.tree.nodes_on_flows(sources)
        assert set(result.loss_by_node()) <= on_flows

    def test_global_conservation_under_loss(self):
        config, result = _run(0.08)
        created = sum(flow.n_packets for flow in config.flows)
        assert (
            result.delivered_count() + result.drop_count() + result.lost_in_transit
            == created
        )

    def test_node_stats_mirror_loss_by_node(self):
        _, result = _run(0.08)
        for node, count in result.loss_by_node().items():
            assert result.node_stats[node].lost_in_transit == count


class TestOccupancyIntegralUnderLoss:
    def test_integral_equals_summed_buffering_delays(self):
        """Per node: integral of occupancy over time == sum of the
        realized buffering delays of every packet that visited it,
        including packets later lost on the air."""
        _, result = _run(0.08, record_packet_traces=True)
        realized = defaultdict(float)
        for trace in result.packet_traces.values():
            for node, delay in trace.buffering_delays():
                realized[node] += delay
        for node, stats in result.node_stats.items():
            assert stats.occupancy_time_integral == pytest.approx(
                realized.get(node, 0.0), abs=1e-6
            )

    def test_mean_occupancy_consistent_with_integral(self):
        _, result = _run(0.08)
        for stats in result.node_stats.values():
            if stats.observation_time > 0:
                assert stats.mean_occupancy == pytest.approx(
                    stats.occupancy_time_integral / stats.observation_time
                )

    def test_loss_starves_downstream_occupancy(self):
        """Heavy loss thins traffic along the path, so the trunk near
        the sink accumulates measurably less occupancy-time."""
        config, lossless = _run(0.0)
        _, lossy = _run(0.25)
        # Compare at the last hop before the sink of flow 1's path.
        path = config.tree.path(config.flows[0].source)
        last_relay = path[-2]
        assert (
            lossy.node_stats[last_relay].occupancy_time_integral
            < lossless.node_stats[last_relay].occupancy_time_integral
        )
