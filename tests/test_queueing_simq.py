"""Simulation-vs-theory tests for the queue simulators.

These are the Section 4 validation experiments in miniature: the DES
engine must reproduce the closed forms within sampling error.
"""

import pytest

from repro.queueing.erlang import erlang_b
from repro.queueing.simq import SimulatedMMInfinity, SimulatedMMkk


class TestSimulatedMMInfinity:
    def test_mean_occupancy_matches_rho(self):
        stats = SimulatedMMInfinity(
            arrival_rate=0.5, service_rate=1.0 / 30.0, seed=1
        ).run(horizon=30_000.0)
        assert stats["mean_occupancy"] == pytest.approx(15.0, rel=0.08)

    def test_mean_sojourn_matches_inverse_mu(self):
        stats = SimulatedMMInfinity(
            arrival_rate=0.5, service_rate=1.0 / 30.0, seed=2
        ).run(horizon=30_000.0)
        assert stats["mean_sojourn"] == pytest.approx(30.0, rel=0.08)

    def test_occupancy_distribution_is_poissonish(self):
        """TV distance between simulated occupancy and Poisson(rho)."""
        from repro.queueing.mminf import MMInfinityQueue

        stats = SimulatedMMInfinity(
            arrival_rate=1.0, service_rate=0.2, seed=3
        ).run(horizon=30_000.0)
        analytic = MMInfinityQueue(arrival_rate=1.0, service_rate=0.2)
        support = range(0, 40)
        tv = 0.5 * sum(
            abs(stats["occupancy_distribution"].get(k, 0.0) - analytic.occupancy_pmf(k))
            for k in support
        )
        assert tv < 0.05

    def test_distribution_sums_to_one(self):
        stats = SimulatedMMInfinity(1.0, 1.0, seed=4).run(horizon=5000.0)
        assert sum(stats["occupancy_distribution"].values()) == pytest.approx(1.0)

    def test_completed_count_positive(self):
        stats = SimulatedMMInfinity(1.0, 1.0, seed=5).run(horizon=500.0)
        assert stats["completed"] > 300

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatedMMInfinity(0.0, 1.0)
        with pytest.raises(ValueError):
            SimulatedMMInfinity(1.0, -1.0)


class TestSimulatedMMkk:
    def test_blocking_matches_erlang_heavy_load(self):
        stats = SimulatedMMkk(
            arrival_rate=0.5, service_rate=1.0 / 30.0, capacity=10, seed=1
        ).run(horizon=30_000.0)
        assert stats["blocking_probability"] == pytest.approx(
            erlang_b(15.0, 10), abs=0.03
        )

    def test_blocking_matches_erlang_light_load(self):
        stats = SimulatedMMkk(
            arrival_rate=0.1, service_rate=1.0 / 30.0, capacity=10, seed=2
        ).run(horizon=60_000.0)
        assert stats["blocking_probability"] == pytest.approx(
            erlang_b(3.0, 10), abs=0.01
        )

    def test_occupancy_never_exceeds_capacity(self):
        stats = SimulatedMMkk(1.0, 0.05, capacity=5, seed=3).run(horizon=5000.0)
        assert max(stats["occupancy_distribution"]) <= 5

    def test_offered_counts(self):
        stats = SimulatedMMkk(1.0, 1.0, capacity=2, seed=4).run(horizon=1000.0)
        assert stats["offered"] == pytest.approx(1000, rel=0.15)
        assert stats["blocked"] <= stats["offered"]

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatedMMkk(1.0, 1.0, capacity=0)
        with pytest.raises(ValueError):
            SimulatedMMkk(-1.0, 1.0, capacity=2)
