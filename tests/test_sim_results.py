"""Unit tests for the simulation result containers."""

import pytest

from repro.core.metrics import PacketRecord
from repro.net.packet import PacketObservation
from repro.sim.results import DroppedPacket, NodeStats, SimulationResult


def _record(flow_id, created, delivered, packet_id=0):
    return PacketRecord(
        flow_id=flow_id, packet_id=packet_id, created_at=created,
        delivered_at=delivered, hop_count=3,
    )


def _obs(arrival):
    return PacketObservation(
        arrival_time=arrival, previous_hop=0, origin=0, routing_seq=0, hop_count=3
    )


def _result():
    result = SimulationResult()
    for i, (flow, created, delivered) in enumerate(
        [(1, 0.0, 5.0), (2, 1.0, 6.0), (1, 2.0, 9.0)]
    ):
        result.records.append(_record(flow, created, delivered, packet_id=i))
        result.observations.append(_obs(delivered))
    result.dropped.append(
        DroppedPacket(flow_id=2, packet_id=9, created_at=3.0,
                      dropped_at=4.0, dropped_by=7)
    )
    return result


class TestSimulationResult:
    def test_flow_ids(self):
        assert _result().flow_ids() == [1, 2]

    def test_flow_indices_align_with_records(self):
        result = _result()
        assert result.flow_indices(1) == [0, 2]
        assert result.flow_indices(2) == [1]
        assert result.flow_indices(99) == []

    def test_flow_records_and_observations(self):
        result = _result()
        assert [r.packet_id for r in result.flow_records(1)] == [0, 2]
        assert [o.arrival_time for o in result.flow_observations(1)] == [5.0, 9.0]

    def test_counts(self):
        result = _result()
        assert result.delivered_count() == 3
        assert result.delivered_count(flow_id=1) == 2
        assert result.drop_count() == 1
        assert result.drop_count(flow_id=2) == 1
        assert result.drop_count(flow_id=1) == 0

    def test_mean_latency(self):
        result = _result()
        assert result.mean_latency() == pytest.approx((5.0 + 5.0 + 7.0) / 3)
        assert result.mean_latency(flow_id=2) == pytest.approx(5.0)

    def test_mean_latency_empty_flow_rejected(self):
        with pytest.raises(ValueError):
            _result().mean_latency(flow_id=99)

    def test_total_preemptions_sums_node_stats(self):
        result = _result()
        result.node_stats[1] = NodeStats(node_id=1, preemptions=4)
        result.node_stats[2] = NodeStats(node_id=2, preemptions=6)
        assert result.total_preemptions() == 10


class TestNodeStats:
    def test_mean_occupancy(self):
        stats = NodeStats(node_id=1, occupancy_time_integral=50.0,
                          observation_time=10.0)
        assert stats.mean_occupancy == 5.0

    def test_mean_occupancy_zero_time(self):
        assert NodeStats(node_id=1).mean_occupancy == 0.0


class TestMixComparisonValidation:
    def test_invalid_parameters_rejected(self):
        from repro.experiments.mix_comparison import compare_mixes_at_equal_latency

        with pytest.raises(ValueError):
            compare_mixes_at_equal_latency(target_latency=0.0)
        with pytest.raises(ValueError):
            compare_mixes_at_equal_latency(message_rate=-1.0)
        with pytest.raises(ValueError):
            compare_mixes_at_equal_latency(horizon=10.0)  # < 50 messages

    def test_rows_hit_latency_target(self):
        from repro.experiments.mix_comparison import compare_mixes_at_equal_latency

        rows = compare_mixes_at_equal_latency(
            target_latency=20.0, message_rate=0.5, horizon=3000.0, seed=1
        )
        assert len(rows) == 4
        non_pool = [row for row in rows if not row.design.startswith("pool")]
        for row in non_pool:
            assert row.mean_latency == pytest.approx(20.0, rel=0.3)


class TestAssetTrackingValidation:
    def test_bad_speed_rejected(self):
        from repro.experiments.asset_tracking import asset_tracking_experiment

        with pytest.raises(ValueError):
            asset_tracking_experiment(speeds=(0.0,))
