"""Unit tests for routing trees."""

import networkx as nx
import numpy as np
import pytest

from repro.net.routing import (
    RoutingTree,
    backup_parents,
    greedy_grid_tree,
    shortest_path_tree,
)
from repro.net.topology import (
    PAPER_HOP_COUNTS,
    grid_deployment,
    line_deployment,
    paper_topology,
    random_geometric_deployment,
)


class TestRoutingTree:
    def test_path_and_hop_count(self):
        tree = RoutingTree(parent={3: 2, 2: 1, 1: 0}, sink=0)
        assert tree.path(3) == [3, 2, 1, 0]
        assert tree.hop_count(3) == 3
        assert tree.hop_count(1) == 1

    def test_next_hop(self):
        tree = RoutingTree(parent={1: 0}, sink=0)
        assert tree.next_hop(1) == 0

    def test_sink_does_not_forward(self):
        tree = RoutingTree(parent={1: 0}, sink=0)
        with pytest.raises(ValueError):
            tree.next_hop(0)

    def test_unknown_node_raises(self):
        tree = RoutingTree(parent={1: 0}, sink=0)
        with pytest.raises(KeyError):
            tree.next_hop(99)

    def test_sink_with_parent_rejected(self):
        with pytest.raises(ValueError):
            RoutingTree(parent={0: 1, 1: 0}, sink=0)

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            RoutingTree(parent={1: 2, 2: 3, 3: 1}, sink=0)

    def test_children_map(self):
        tree = RoutingTree(parent={1: 0, 2: 0, 3: 1}, sink=0)
        assert tree.children_map() == {0: [1, 2], 1: [3]}

    def test_nodes_on_flows(self):
        tree = RoutingTree(parent={1: 0, 2: 1, 3: 0}, sink=0)
        assert tree.nodes_on_flows([2]) == {2, 1}
        assert tree.nodes_on_flows([2, 3]) == {2, 1, 3}


class TestShortestPathTree:
    def test_line_hops(self):
        deployment = line_deployment(hops=6)
        tree = shortest_path_tree(deployment)
        assert tree.hop_count(0) == 6

    def test_hop_counts_equal_bfs_distances(self):
        deployment = grid_deployment(width=5, height=4)
        tree = shortest_path_tree(deployment)
        graph = deployment.connectivity_graph()
        distances = nx.single_source_shortest_path_length(graph, deployment.sink)
        for node in deployment.node_ids:
            if node != deployment.sink:
                assert tree.hop_count(node) == distances[node]

    def test_deterministic_tie_breaking(self):
        deployment = grid_deployment(width=4, height=4)
        a = shortest_path_tree(deployment)
        b = shortest_path_tree(deployment)
        assert dict(a.parent) == dict(b.parent)

    def test_random_deployment_routable(self):
        rng = np.random.Generator(np.random.PCG64(5))
        deployment = random_geometric_deployment(35, 10.0, 3.0, rng)
        tree = shortest_path_tree(deployment)
        for node in deployment.node_ids:
            if node != deployment.sink:
                assert tree.path(node)[-1] == deployment.sink

    def test_disconnected_deployment_rejected(self):
        from repro.net.topology import Deployment

        deployment = Deployment(
            positions={0: (0.0, 0.0), 1: (10.0, 0.0)}, sink=0, radio_range=1.0
        )
        with pytest.raises(ValueError):
            shortest_path_tree(deployment)


class TestGreedyGridTree:
    def test_paper_hop_counts(self):
        deployment = paper_topology()
        tree = greedy_grid_tree(deployment, width=12)
        for label, expected in PAPER_HOP_COUNTS.items():
            assert tree.hop_count(deployment.node_for_label(label)) == expected

    def test_hop_counts_are_manhattan(self):
        deployment = grid_deployment(width=6, height=6)
        tree = greedy_grid_tree(deployment, width=6)
        for node, (x, y) in deployment.positions.items():
            if node != deployment.sink:
                assert tree.hop_count(node) == int(x + y)

    def test_progressive_merging_on_paper_topology(self):
        """S2's path passes through S1; S1's through S4 and S3."""
        deployment = paper_topology()
        tree = greedy_grid_tree(deployment, width=12)
        paths = {
            label: tree.path(deployment.node_for_label(label))
            for label in ("S1", "S2", "S3", "S4")
        }
        assert deployment.node_for_label("S1") in paths["S2"]
        assert deployment.node_for_label("S4") in paths["S1"]
        assert deployment.node_for_label("S3") in paths["S1"]

    def test_trunk_carries_all_flows_near_sink(self):
        deployment = paper_topology()
        tree = greedy_grid_tree(deployment, width=12)
        paths = [
            set(tree.path(deployment.node_for_label(label)))
            for label in ("S1", "S2", "S3", "S4")
        ]
        shared = set.intersection(*paths)
        # Shared trunk: at least the sink plus several trunk nodes.
        assert len(shared) >= 5

    def test_steps_reduce_larger_axis_first(self):
        deployment = grid_deployment(width=8, height=8)
        tree = greedy_grid_tree(deployment, width=8)
        # Node at (2, 5): y-dominant, steps in y first -> parent (2, 4).
        node = 5 * 8 + 2
        assert tree.next_hop(node) == 4 * 8 + 2
        # Node at (5, 2): x-dominant -> parent (4, 2).
        node = 2 * 8 + 5
        assert tree.next_hop(node) == 2 * 8 + 4
        # Tie at (3, 3): steps in x -> parent (2, 3).
        node = 3 * 8 + 3
        assert tree.next_hop(node) == 3 * 8 + 2


class TestBackupParents:
    def test_line_topology_has_no_backups(self):
        """On a line every node has exactly one downstream neighbor."""
        deployment = line_deployment(hops=6)
        tree = shortest_path_tree(deployment)
        assert backup_parents(deployment, tree) == {}

    def test_grid_interior_nodes_have_backups(self):
        deployment = grid_deployment(width=5, height=5)
        tree = greedy_grid_tree(deployment, width=5)
        backups = backup_parents(deployment, tree)
        assert backups  # a grid offers alternative descent directions
        for node, backup in backups.items():
            assert backup != tree.parent[node]

    def test_backups_make_strict_progress(self):
        """Every backup is strictly closer to the sink: rerouting through
        backups can never loop."""
        deployment = paper_topology()
        tree = greedy_grid_tree(deployment, width=12)
        backups = backup_parents(deployment, tree)
        graph = deployment.connectivity_graph()
        for node, backup in backups.items():
            assert graph.has_edge(node, backup)
            backup_depth = 0 if backup == tree.sink else tree.hop_count(backup)
            assert backup_depth < tree.hop_count(node)

    def test_deterministic_tie_break(self):
        """Equal-depth candidates resolve to the smallest node id."""
        deployment = grid_deployment(width=4, height=4)
        tree = greedy_grid_tree(deployment, width=4)
        assert backup_parents(deployment, tree) == backup_parents(deployment, tree)

    def test_most_paper_nodes_are_protected(self):
        """The Figure 1 grid leaves few single-points-of-failure."""
        deployment = paper_topology()
        tree = greedy_grid_tree(deployment, width=12)
        backups = backup_parents(deployment, tree)
        assert len(backups) / len(tree.parent) > 0.8
