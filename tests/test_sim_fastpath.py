"""Fast-path equivalence: the batch replay is observable-bit-identical.

``repro.sim.fastpath`` replays eligible configurations as vectorized
per-node batches instead of interleaved discrete events.  Its contract
is byte-equality of every observable -- adversary observations,
delivery records, drop logs, node statistics including float occupancy
integrals, event accounting, telemetry -- with the event-driven engine
(``REPRO_FASTPATH=0`` forces the latter, making the A/B a one-variable
experiment).  The golden-digest suite separately pins both paths to the
seed engine's output; this module pins them to *each other* across the
eligibility matrix and across ``--jobs N`` parallelism.
"""

from __future__ import annotations

import pytest

from repro.sim.fastpath import fastpath_eligible, fastpath_enabled
from repro.sim.observables import observable_digest, reference_configs
from repro.sim.simulator import SensorNetworkSimulator

CONFIGS = reference_configs()

ELIGIBLE = [
    "fig2-no-delay-ia2",
    "fig2-no-delay-ia10",
    "fig2-unlimited-ia2",
    "fig2-unlimited-ia10",
    "fig2-rcad-ia2",
    "fig2-rcad-ia10",
    "rcad-seed7",
    "poisson-rcad-telemetry",
    "poisson-unlimited",
    "droptail",
]
INELIGIBLE = [
    "constant-delay",  # point-mass delays make event ties routine
    "rcad-newest-victim",  # non-SRD victim scan
    "rcad-oldest-victim",
    "sealed",  # payload codec consumes extra RNG streams per packet
    "lossy",  # per-hop Bernoulli loss interleaves with delivery order
    "recorded",  # transmission logs / traces need per-event hooks
    "chaos",  # fault machinery
    "chaos-arq",
]


class TestEligibilityMatrix:
    def test_reference_matrix_is_fully_classified(self):
        assert set(ELIGIBLE) | set(INELIGIBLE) == set(CONFIGS)

    @pytest.mark.parametrize("name", ELIGIBLE)
    def test_eligible(self, name):
        assert fastpath_eligible(CONFIGS[name])

    @pytest.mark.parametrize("name", INELIGIBLE)
    def test_ineligible(self, name):
        assert not fastpath_eligible(CONFIGS[name])


class TestEnvironmentEscapeHatch:
    @pytest.mark.parametrize("value", ["0", "off", "false", "FALSE", " no "])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_FASTPATH", value)
        assert not fastpath_enabled()

    @pytest.mark.parametrize("value", ["1", "on", ""])
    def test_enabled_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_FASTPATH", value)
        assert fastpath_enabled()

    def test_default_is_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_FASTPATH", raising=False)
        assert fastpath_enabled()


class TestBitIdenticalToEventEngine:
    @pytest.mark.parametrize("name", ELIGIBLE)
    def test_digest_matches_legacy(self, name, monkeypatch):
        monkeypatch.setenv("REPRO_FASTPATH", "0")
        legacy = observable_digest(SensorNetworkSimulator(CONFIGS[name]).run())
        monkeypatch.delenv("REPRO_FASTPATH")
        fast = observable_digest(SensorNetworkSimulator(CONFIGS[name]).run())
        assert fast == legacy

    def test_subclasses_take_the_event_engine(self, monkeypatch):
        """Lifecycle hooks (``_finalize`` & co.) are overridable; a
        subclass must never be routed around its own overrides."""
        calls = []

        class Probe(SensorNetworkSimulator):
            def _finalize(self):
                calls.append("finalize")
                super()._finalize()

        config = CONFIGS["fig2-rcad-ia10"]
        assert fastpath_eligible(config)
        Probe(config).run()
        assert calls == ["finalize"]

    def test_single_use_guard_applies_to_fastpath(self):
        sim = SensorNetworkSimulator(CONFIGS["fig2-rcad-ia10"])
        sim.run()
        with pytest.raises(RuntimeError, match="single-use"):
            sim.run()

    def test_horizon_overrun_message_matches_engine(self):
        from dataclasses import replace

        config = replace(CONFIGS["fig2-rcad-ia10"], max_sim_time=10.0)
        assert fastpath_eligible(config)
        with pytest.raises(RuntimeError, match="exceeded max_sim_time=10"):
            SensorNetworkSimulator(config).run()


def _digest(name: str) -> str:
    return observable_digest(SensorNetworkSimulator(CONFIGS[name]).run())


class TestParallelJobsDeterminism:
    def test_digests_bit_identical_across_jobs(self):
        """The fast path inherits the runtime layer's non-negotiable
        property: ``--jobs N`` equals serial, byte for byte."""
        from repro.analysis.sweep import sweep
        from repro.runtime import use_runtime

        names = ["fig2-rcad-ia2", "fig2-no-delay-ia10", "droptail",
                 "poisson-rcad-telemetry"]
        serial = sweep(names, _digest)
        with use_runtime(jobs=2):
            parallel = sweep(names, _digest)
        assert serial == parallel
