"""Tests for the empirical-Bayes adversary."""

import numpy as np
import pytest

from repro.core.adversary import FlowKnowledge
from repro.core.bayes import EmpiricalBayesAdversary, erlang_path_delay_pdf
from repro.net.packet import PacketObservation

KNOWLEDGE = FlowKnowledge(
    transmission_delay=1.0, mean_delay_per_hop=30.0,
    buffer_capacity=10, n_sources=1,
)


def _obs(arrival, origin=5, hops=3):
    return PacketObservation(
        arrival_time=arrival, previous_hop=0, origin=origin,
        routing_seq=0, hop_count=hops,
    )


class TestErlangPathDelayPdf:
    def test_integrates_to_one(self):
        from scipy import integrate

        pdf = erlang_path_delay_pdf(3, 30.0, 1.0)
        total, _ = integrate.quad(lambda y: float(pdf(np.array([y]))[0]), 0, 3000)
        assert total == pytest.approx(1.0, abs=1e-4)

    def test_zero_before_transmission_floor(self):
        pdf = erlang_path_delay_pdf(5, 30.0, 1.0)
        assert float(pdf(np.array([4.9]))[0]) == 0.0
        assert float(pdf(np.array([200.0]))[0]) > 0.0

    def test_mean_matches_path_budget(self):
        from scipy import integrate

        hops, mean = 4, 20.0
        pdf = erlang_path_delay_pdf(hops, mean, 1.0)
        expectation, _ = integrate.quad(
            lambda y: y * float(pdf(np.array([y]))[0]), 0, 5000
        )
        assert expectation == pytest.approx(hops * mean + hops * 1.0, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_path_delay_pdf(0, 30.0, 1.0)
        with pytest.raises(ValueError):
            erlang_path_delay_pdf(3, 0.0, 1.0)


class TestEmpiricalBayesAdversary:
    def _synthetic_observations(self, rng, n=400, hops=3, origin=5):
        """Bimodal creation times + true Erlang(h, mu) path delays."""
        creation = np.sort(
            np.concatenate(
                [rng.normal(200.0, 20.0, n // 2), rng.normal(600.0, 20.0, n - n // 2)]
            )
        )
        delays = rng.gamma(hops, 30.0, size=n) + hops * 1.0
        arrivals = creation + delays
        order = np.argsort(arrivals)
        observations = [
            _obs(float(arrivals[i]), origin=origin, hops=hops) for i in order
        ]
        return creation[order], observations

    def test_requires_fit_before_estimate(self):
        adversary = EmpiricalBayesAdversary(KNOWLEDGE, hop_counts={5: 3})
        with pytest.raises(RuntimeError):
            adversary.estimate(_obs(10.0))

    def test_beats_mean_subtraction_on_structured_traffic(self):
        rng = np.random.Generator(np.random.PCG64(1))
        truth, observations = self._synthetic_observations(rng)
        adversary = EmpiricalBayesAdversary(KNOWLEDGE, hop_counts={5: 3})
        adversary.fit(observations)
        estimates = np.array(adversary.estimate_all(observations))
        bayes_mse = float(np.mean((estimates - truth) ** 2))
        mean_sub = np.array(
            [o.arrival_time - 3 * (1.0 + 30.0) for o in observations]
        )
        baseline_mse = float(np.mean((mean_sub - truth) ** 2))
        assert bayes_mse < 0.7 * baseline_mse

    def test_nearly_unbiased_with_correct_delay_model(self):
        rng = np.random.Generator(np.random.PCG64(2))
        truth, observations = self._synthetic_observations(rng)
        adversary = EmpiricalBayesAdversary(KNOWLEDGE, hop_counts={5: 3})
        adversary.fit(observations)
        estimates = np.array(adversary.estimate_all(observations))
        assert abs(float(np.mean(estimates - truth))) < 15.0

    def test_unknown_origin_raises(self):
        rng = np.random.Generator(np.random.PCG64(3))
        _, observations = self._synthetic_observations(rng, n=100)
        adversary = EmpiricalBayesAdversary(KNOWLEDGE, hop_counts={5: 3})
        adversary.fit(observations)
        with pytest.raises(KeyError):
            adversary.estimate(_obs(500.0, origin=99))
        with pytest.raises(KeyError):
            adversary.fit([_obs(500.0, origin=99)])

    def test_reset_forgets_fit(self):
        rng = np.random.Generator(np.random.PCG64(4))
        _, observations = self._synthetic_observations(rng, n=100)
        adversary = EmpiricalBayesAdversary(KNOWLEDGE, hop_counts={5: 3})
        adversary.fit(observations)
        adversary.reset()
        with pytest.raises(RuntimeError):
            adversary.estimate(observations[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalBayesAdversary(KNOWLEDGE, hop_counts={})
        with pytest.raises(ValueError):
            EmpiricalBayesAdversary(
                FlowKnowledge(transmission_delay=1.0), hop_counts={5: 3}
            )
        with pytest.raises(ValueError):
            EmpiricalBayesAdversary(KNOWLEDGE, hop_counts={5: 3}, grid_step=0.0)
        adversary = EmpiricalBayesAdversary(KNOWLEDGE, hop_counts={5: 3})
        with pytest.raises(ValueError):
            adversary.fit([])


class TestBayesAttackExperiment:
    def test_shape(self):
        from repro.experiments.bayes_attack import bayes_attack_experiment

        rows = bayes_attack_experiment(n_packets=200, seed=5)
        cells = {(row.case, row.adversary) for row in rows}
        assert ("unlimited", "empirical-bayes") in cells
        assert ("rcad", "empirical-bayes") in cells
        assert ("no-delay", "baseline") in cells
        by_cell = {(row.case, row.adversary): row for row in rows}
        # EB exploits structure where the delay model is right...
        assert (
            by_cell[("unlimited", "empirical-bayes")].mse
            < by_cell[("unlimited", "baseline")].mse
        )
        # ...but RCAD still keeps it orders above the unlimited EB MSE.
        assert (
            by_cell[("rcad", "empirical-bayes")].mse
            > 3 * by_cell[("unlimited", "empirical-bayes")].mse
        )
