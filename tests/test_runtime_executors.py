"""Executor contract: ordering, chunking, failure propagation."""

import pickle

import pytest

from repro.analysis.sweep import ReplicationError, replicate, sweep
from repro.runtime import (
    ParallelExecutor,
    SerialExecutor,
    WorkerError,
    executors as executors_module,
    use_runtime,
)


class TestSerialExecutor:
    def test_preserves_order(self):
        assert SerialExecutor().map(lambda x: x * x, [3, 1, 2]) == [9, 1, 4]

    def test_empty(self):
        assert SerialExecutor().map(lambda x: x, []) == []


class TestParallelExecutor:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=0)
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=2, chunk_size=0)

    def test_chunksize_heuristic(self):
        executor = ParallelExecutor(jobs=4)
        assert executor._chunksize(100) == 7  # ceil(100 / 16)
        assert executor._chunksize(3) == 1
        assert ParallelExecutor(jobs=4, chunk_size=5)._chunksize(100) == 5

    def test_preserves_order_across_workers(self):
        result = ParallelExecutor(jobs=4).map(lambda x: x * 10, list(range(23)))
        assert result == [x * 10 for x in range(23)]

    def test_closure_state_ships_to_workers(self):
        offset = 1000
        result = ParallelExecutor(jobs=2).map(lambda x: x + offset, [1, 2, 3])
        assert result == [1001, 1002, 1003]

    def test_worker_exception_carries_item_and_traceback(self):
        def explode(x):
            if x == 2:
                raise ValueError("boom on two")
            return x

        with pytest.raises(WorkerError) as excinfo:
            ParallelExecutor(jobs=2).map(explode, [0, 1, 2, 3])
        assert excinfo.value.index == 2
        assert excinfo.value.item == 2
        assert "boom on two" in str(excinfo.value)
        assert "ValueError" in excinfo.value.remote_traceback

    def test_single_item_runs_serially(self):
        # len(items) <= 1 short-circuits to the serial path: exceptions
        # surface raw, not wrapped.
        def explode(x):
            raise ValueError("raw")

        with pytest.raises(ValueError):
            ParallelExecutor(jobs=4).map(explode, [1])

    def test_nested_map_degrades_to_serial(self):
        outer = ParallelExecutor(jobs=2)

        def run_inner(x):
            # In a forked worker _IN_WORKER is set, so this inner pool
            # must not fork again.
            inner = ParallelExecutor(jobs=2).map(lambda y: y + x, [10, 20])
            return sum(inner)

        assert outer.map(run_inner, [1, 2]) == [32, 34]
        assert executors_module._ACTIVE is None  # always disarmed after


class TestWorkerErrorContract:
    def test_message_carries_serial_repro_command(self):
        error = WorkerError(3, ("rcad", 2.0), "ValueError('x')", "tb")
        assert "--jobs 1" in str(error)
        assert "repro" in str(error)
        assert "sweep item 3" in str(error)

    def test_repro_command_rewrites_jobs_from_argv(self, monkeypatch):
        monkeypatch.setattr(
            "sys.argv", ["repro", "fig2", "--jobs", "8", "--packets", "50"]
        )
        assert (
            executors_module._serial_repro_command()
            == "repro fig2 --packets 50 --jobs 1"
        )
        monkeypatch.setattr("sys.argv", ["repro", "chaos", "--jobs=4"])
        assert executors_module._serial_repro_command() == "repro chaos --jobs 1"

    def test_repro_command_without_cli_context(self, monkeypatch):
        monkeypatch.setattr("sys.argv", ["pytest"])
        assert executors_module._serial_repro_command() == "repro <command> --jobs 1"

    def test_index_and_item_round_trip_through_pickle(self):
        original = WorkerError(7, {"case": "rcad", "load": 2.0}, "boom", "trace")
        restored = pickle.loads(pickle.dumps(original))
        assert isinstance(restored, WorkerError)
        assert restored.index == 7
        assert restored.item == {"case": "rcad", "load": 2.0}
        assert restored.message == "boom"
        assert restored.remote_traceback == "trace"
        assert "sweep item 7" in str(restored)


class TestForkUnavailableDegradation:
    def test_map_runs_serially_without_fork(self, monkeypatch):
        # Platform without fork (e.g. Windows/macOS-spawn): the parallel
        # executor must quietly take the serial path -- same results, no
        # pool construction at all.
        monkeypatch.setattr(
            "multiprocessing.get_all_start_methods", lambda: ["spawn"]
        )

        def explode_if_pooled(*args, **kwargs):
            raise AssertionError("ProcessPoolExecutor must not be built")

        monkeypatch.setattr(
            executors_module, "ProcessPoolExecutor", explode_if_pooled
        )
        result = ParallelExecutor(jobs=4).map(lambda x: x * 3, [1, 2, 3])
        assert result == [3, 6, 9]

    def test_map_runs_serially_inside_worker(self, monkeypatch):
        # The _IN_WORKER guard: a sweep dispatched from within a forked
        # worker must not open a nested pool (fork bomb).
        monkeypatch.setattr(executors_module, "_IN_WORKER", True)

        def explode_if_pooled(*args, **kwargs):
            raise AssertionError("nested pool must not be built")

        monkeypatch.setattr(
            executors_module, "ProcessPoolExecutor", explode_if_pooled
        )
        result = ParallelExecutor(jobs=4).map(lambda x: x + 1, [1, 2, 3])
        assert result == [2, 3, 4]

    def test_exceptions_surface_raw_on_serial_fallback(self, monkeypatch):
        monkeypatch.setattr(
            "multiprocessing.get_all_start_methods", lambda: ["spawn"]
        )

        def explode(x):
            raise ValueError("raw, not WorkerError")

        with pytest.raises(ValueError, match="raw"):
            ParallelExecutor(jobs=4).map(explode, [1, 2])


class TestSweepIntegration:
    def test_sweep_uses_active_executor(self):
        with use_runtime(jobs=3):
            assert sweep([1, 2, 3, 4], lambda x: x * 2) == [2, 4, 6, 8]

    def test_sweep_rejects_empty(self):
        with pytest.raises(ValueError):
            sweep([], lambda x: x)

    def test_replicate_names_offending_seed(self):
        def run_one(seed):
            if seed == 7:
                raise RuntimeError("bad draw")
            return float(seed)

        with pytest.raises(ReplicationError, match="seed 7"):
            replicate(4, run_one, base_seed=5)

    def test_replicate_names_offending_seed_in_parallel(self):
        def run_one(seed):
            if seed == 2:
                raise RuntimeError("bad draw")
            return float(seed)

        with use_runtime(jobs=2):
            with pytest.raises(WorkerError, match="seed 2"):
                replicate(4, run_one, base_seed=0)

    def test_replicate_summary_matches_serial(self):
        serial = replicate(6, lambda seed: float(seed * seed), base_seed=3)
        with use_runtime(jobs=3):
            parallel = replicate(6, lambda seed: float(seed * seed), base_seed=3)
        assert serial == parallel
