"""Simulator-level telemetry: probes, series, and queueing cross-checks."""

import dataclasses

import pytest

from repro.queueing.mminf import MMInfinityQueue
from repro.queueing.mmkk import MMkkQueue
from repro.sim.config import SimulationConfig
from repro.sim.simulator import SensorNetworkSimulator


def _run(interarrival=10.0, case="rcad", n_packets=400, seed=0,
         telemetry=True, traffic="poisson"):
    config = SimulationConfig.paper_baseline(
        interarrival=interarrival,
        case=case,
        n_packets=n_packets,
        seed=seed,
        traffic=traffic,
    )
    if telemetry:
        config = dataclasses.replace(config, record_telemetry=True)
    return SensorNetworkSimulator(config).run()


class TestTelemetryOffByDefault:
    def test_result_has_no_telemetry_by_default(self):
        result = _run(n_packets=50, telemetry=False)
        assert result.telemetry is None

    def test_instrumentation_does_not_change_results(self):
        """Probes observe; they must never perturb the simulation."""
        plain = _run(n_packets=100, telemetry=False)
        instrumented = _run(n_packets=100, telemetry=True)
        assert [r.latency for r in plain.records] == [
            r.latency for r in instrumented.records
        ]
        assert plain.total_preemptions() == instrumented.total_preemptions()


class TestRecordedSeries:
    def test_per_node_occupancy_series_exist(self):
        result = _run(n_packets=100)
        names = result.telemetry.series.names()
        occupancy = [n for n in names if n.startswith("occupancy/")]
        assert occupancy  # every buffering node that saw traffic has one

    def test_counters_agree_with_result(self):
        result = _run(n_packets=100)
        counters = result.telemetry.registry.snapshot()["counters"]
        assert counters["sim/delivered"] == len(result.records)
        assert counters["sim/preempted"] == result.total_preemptions()
        assert counters.get("sim/dropped", 0) == result.drop_count()
        # Conservation: everything admitted is eventually released.
        assert counters["sim/released"] == counters["sim/admitted"]

    def test_latency_histogram_matches_records(self):
        result = _run(n_packets=100)
        hist = result.telemetry.registry.histogram("latency/flow-1")
        flow1 = [r.latency for r in result.records if r.flow_id == 1]
        assert hist.count == len(flow1)
        assert hist.sum == pytest.approx(sum(flow1))
        assert hist.min == pytest.approx(min(flow1))
        assert hist.max == pytest.approx(max(flow1))

    def test_engine_counters_present(self):
        result = _run(n_packets=100)
        counters = result.telemetry.registry.snapshot()["counters"]
        assert counters["des/events-processed"] > 0
        assert counters["des/events-scheduled"] >= counters["des/events-processed"]
        # Under RCAD every preemption cancels the victim's release event.
        assert counters["des/events-skipped"] == counters["sim/preempted"]

    def test_occupancy_average_matches_node_stats_exactly(self):
        """The telemetry series and NodeStats integrate the same path."""
        result = _run(n_packets=200)
        checked = 0
        for node, stats in result.node_stats.items():
            series = result.telemetry.series.get(f"occupancy/node-{node}")
            if series is None or stats.observation_time <= 0:
                continue
            measured = series.time_average(0.0, stats.observation_time)
            assert measured == pytest.approx(stats.mean_occupancy, rel=1e-9)
            checked += 1
        assert checked > 0


class TestQueueingCrossChecks:
    def test_unlimited_occupancy_matches_mm_infinity(self):
        """Poisson sources + infinite buffers: occupancy -> rho = lambda/mu.

        Node 103 (source S1) also forwards S2's flow, so it carries
        lambda = 2/interarrival; with 1/mu = 30 the predicted mean
        occupancy is rho = 2 * 30 / interarrival.
        """
        interarrival = 10.0
        result = _run(
            interarrival=interarrival, case="unlimited", n_packets=3000, seed=0
        )
        predicted = MMInfinityQueue(
            arrival_rate=2.0 / interarrival, service_rate=1.0 / 30.0
        ).mean_occupancy
        series = result.telemetry.series.get("occupancy/node-103")
        horizon = 3000 * interarrival
        measured = series.time_average(300.0, horizon * 0.95)
        assert measured == pytest.approx(predicted, rel=0.10)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_rcad_occupancy_matches_mmkk_within_10pct(self, seed):
        """ISSUE acceptance: S1-path occupancy vs the M/M/k/k prediction.

        At 1/lambda = 10 the trunk node 103 sees lambda = 0.2 (its own
        flow plus S2's), rho = 6 on k = 10 slots -- a moderate load
        where RCAD's preemption bias stays small.
        """
        interarrival = 10.0
        result = _run(
            interarrival=interarrival, case="rcad", n_packets=3000, seed=seed
        )
        predicted = MMkkQueue(
            arrival_rate=2.0 / interarrival, service_rate=1.0 / 30.0, capacity=10
        ).mean_occupancy
        series = result.telemetry.series.get("occupancy/node-103")
        horizon = 3000 * interarrival
        measured = series.time_average(300.0, horizon * 0.95)
        assert measured == pytest.approx(predicted, rel=0.10)

    def test_occupancy_never_exceeds_capacity(self):
        result = _run(n_packets=300)
        for name in result.telemetry.series.names():
            if name.startswith("occupancy/"):
                series = result.telemetry.series.get(name)
                assert max(series.values, default=0.0) <= 10.0
