"""Unit tests for the Erlang loss formula and inverse problems."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.queueing.erlang import (
    erlang_b,
    erlang_b_direct,
    erlang_b_inverse_capacity,
    mu_for_target_loss,
    offered_load_for_target_loss,
)


class TestErlangB:
    def test_known_value(self):
        # E(2, 4) = (2^4/4!) / sum = 2/21.
        assert erlang_b(2.0, 4) == pytest.approx(2.0 / 21.0)

    def test_zero_load_never_blocks(self):
        assert erlang_b(0.0, 5) == 0.0

    def test_zero_servers_always_blocks(self):
        assert erlang_b(3.0, 0) == 1.0

    def test_matches_direct_formula(self):
        for rho in (0.5, 2.0, 10.0, 15.0):
            for k in (1, 5, 10, 50):
                assert erlang_b(rho, k) == pytest.approx(
                    erlang_b_direct(rho, k), rel=1e-10
                )

    def test_paper_operating_point(self):
        """rho = 15 Erlang on k = 10 slots (1/lambda=2 trunk): heavy loss."""
        assert 0.3 < erlang_b(15.0, 10) < 0.5

    def test_increasing_in_load(self):
        values = [erlang_b(rho, 10) for rho in (1.0, 5.0, 10.0, 20.0, 40.0)]
        assert values == sorted(values)
        assert values[0] < values[-1]

    def test_decreasing_in_capacity(self):
        values = [erlang_b(10.0, k) for k in (1, 5, 10, 20, 40)]
        assert values == sorted(values, reverse=True)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            erlang_b(-1.0, 3)
        with pytest.raises(ValueError):
            erlang_b(1.0, -3)

    def test_non_integer_servers_rejected(self):
        with pytest.raises(TypeError):
            erlang_b(1.0, 2.5)  # type: ignore[arg-type]

    def test_numpy_integer_servers_accepted(self):
        np = pytest.importorskip("numpy")
        assert erlang_b(2.0, np.int64(4)) == pytest.approx(erlang_b(2.0, 4))
        assert erlang_b_direct(2.0, np.int32(4)) == pytest.approx(erlang_b(2.0, 4))

    def test_bool_servers_rejected(self):
        """bool is index-able as 0/1 but a boolean server count is a bug."""
        with pytest.raises(TypeError, match="bool"):
            erlang_b(1.0, True)  # type: ignore[arg-type]
        with pytest.raises(TypeError, match="bool"):
            erlang_b_direct(1.0, False)  # type: ignore[arg-type]

    def test_string_servers_raise_type_error_not_comparison(self):
        """Type check fires before the range check: no str/int comparison."""
        with pytest.raises(TypeError, match="str"):
            erlang_b(1.0, "3")  # type: ignore[arg-type]

    def test_huge_capacity_is_stable(self):
        """The recursion must not overflow where factorials would."""
        assert 0.0 <= erlang_b(500.0, 600) <= 1.0

    @given(
        st.floats(min_value=0.0, max_value=1e3),
        st.integers(min_value=0, max_value=200),
    )
    def test_is_probability(self, rho, k):
        assert 0.0 <= erlang_b(rho, k) <= 1.0

    @given(
        st.floats(min_value=0.01, max_value=100.0),
        st.integers(min_value=1, max_value=50),
    )
    def test_monotone_in_capacity_property(self, rho, k):
        assert erlang_b(rho, k + 1) <= erlang_b(rho, k) + 1e-12


class TestInverseProblems:
    def test_inverse_capacity_meets_target(self):
        k = erlang_b_inverse_capacity(offered_load=10.0, target_loss=0.01)
        assert erlang_b(10.0, k) <= 0.01
        assert erlang_b(10.0, k - 1) > 0.01

    def test_inverse_capacity_zero_load(self):
        # E(0, 0) = 1 by the formula (a serverless system blocks every
        # arrival), so one slot is the smallest capacity meeting any
        # target below 1 even at zero load.
        assert erlang_b_inverse_capacity(0.0, 0.05) == 1

    def test_offered_load_for_target(self):
        rho = offered_load_for_target_loss(servers=10, target_loss=0.1)
        assert erlang_b(rho, 10) == pytest.approx(0.1, abs=1e-9)

    def test_mu_for_target_loss_meets_target(self):
        mu = mu_for_target_loss(arrival_rate=0.5, servers=10, target_loss=0.05)
        assert erlang_b(0.5 / mu, 10) == pytest.approx(0.05, abs=1e-9)

    def test_mu_scales_linearly_with_rate(self):
        """Twice the traffic needs twice the mu (same rho target)."""
        mu1 = mu_for_target_loss(0.5, 10, 0.05)
        mu2 = mu_for_target_loss(1.0, 10, 0.05)
        assert mu2 == pytest.approx(2 * mu1, rel=1e-9)

    def test_paper_design_rule_shrinks_delay_near_sink(self):
        """Higher aggregate lambda (near sink) -> larger mu -> shorter 1/mu."""
        far = 1.0 / mu_for_target_loss(0.25, 10, 0.1)
        near = 1.0 / mu_for_target_loss(1.0, 10, 0.1)
        assert near < far

    def test_target_bounds_enforced(self):
        with pytest.raises(ValueError):
            mu_for_target_loss(1.0, 10, 0.0)
        with pytest.raises(ValueError):
            mu_for_target_loss(1.0, 10, 1.0)
        with pytest.raises(ValueError):
            offered_load_for_target_loss(10, -0.1)
        with pytest.raises(ValueError):
            erlang_b_inverse_capacity(1.0, 2.0)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError):
            mu_for_target_loss(0.0, 10, 0.1)

    def test_zero_servers_rejected(self):
        with pytest.raises(ValueError):
            offered_load_for_target_loss(0, 0.1)

    def test_inverse_problems_type_check_servers(self):
        with pytest.raises(TypeError, match="str"):
            offered_load_for_target_loss("10", 0.1)  # type: ignore[arg-type]
        with pytest.raises(TypeError, match="bool"):
            mu_for_target_loss(1.0, True, 0.1)  # type: ignore[arg-type]

    def test_inverse_problems_accept_numpy_servers(self):
        np = pytest.importorskip("numpy")
        rho = offered_load_for_target_loss(np.int64(10), 0.1)
        assert erlang_b(rho, 10) == pytest.approx(0.1, abs=1e-9)
        mu = mu_for_target_loss(0.5, np.int64(10), 0.05)
        assert erlang_b(0.5 / mu, 10) == pytest.approx(0.05, abs=1e-9)

    @given(
        st.integers(min_value=1, max_value=40),
        st.floats(min_value=0.001, max_value=0.5),
    )
    def test_offered_load_inverse_consistency(self, servers, target):
        rho = offered_load_for_target_loss(servers, target)
        assert erlang_b(rho, servers) == pytest.approx(target, rel=1e-6)
