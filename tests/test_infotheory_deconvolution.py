"""Unit tests for EM deconvolution and the distribution adversary."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.infotheory.deconvolution import (
    em_deconvolve,
    total_variation_distance,
)


def _rng(seed=0):
    return np.random.Generator(np.random.PCG64(seed))


def _gaussian_noise_pdf(scale):
    def pdf(lag):
        return scipy_stats.norm(0.0, scale).pdf(lag)

    return pdf


def _exp_noise_pdf(mean):
    def pdf(lag):
        return np.where(lag >= 0, np.exp(-lag / mean) / mean, 0.0)

    return pdf


class TestEmDeconvolve:
    def test_recovers_point_mass(self):
        """All X at one grid point + exponential noise -> a spike."""
        rng = _rng(1)
        true_x = 50.0
        z = true_x + rng.exponential(10.0, size=3000)
        grid = np.arange(0.0, 120.0, 2.0)
        result = em_deconvolve(z, _exp_noise_pdf(10.0), grid)
        peak = result.grid[np.argmax(result.density)]
        assert abs(peak - true_x) <= 4.0
        assert result.density.max() > 0.5

    def test_recovers_bimodal_mixture(self):
        rng = _rng(2)
        x = np.concatenate([
            rng.normal(30.0, 3.0, size=2000),
            rng.normal(80.0, 3.0, size=2000),
        ])
        z = x + rng.exponential(8.0, size=4000)
        grid = np.arange(0.0, 130.0, 2.0)
        result = em_deconvolve(z, _exp_noise_pdf(8.0), grid)
        # Mass concentrates near the two modes.
        near_modes = (
            result.density[(result.grid > 20) & (result.grid < 40)].sum()
            + result.density[(result.grid > 70) & (result.grid < 90)].sum()
        )
        assert near_modes > 0.8

    def test_mean_preserved(self):
        rng = _rng(3)
        x = rng.uniform(20.0, 60.0, size=4000)
        z = x + rng.exponential(15.0, size=4000)
        grid = np.arange(0.0, 150.0, 2.0)
        result = em_deconvolve(z, _exp_noise_pdf(15.0), grid)
        assert result.mean() == pytest.approx(40.0, abs=3.0)

    def test_masses_normalized(self):
        rng = _rng(4)
        z = rng.uniform(0, 100, size=500)
        grid = np.arange(0.0, 110.0, 5.0)
        result = em_deconvolve(z, _gaussian_noise_pdf(5.0), grid)
        assert result.density.sum() == pytest.approx(1.0)
        assert np.all(result.density >= 0)

    def test_likelihood_monotone_in_iterations(self):
        rng = _rng(5)
        z = 40.0 + rng.exponential(10.0, size=800)
        grid = np.arange(0.0, 100.0, 2.0)
        short = em_deconvolve(z, _exp_noise_pdf(10.0), grid, max_iterations=3)
        long = em_deconvolve(z, _exp_noise_pdf(10.0), grid, max_iterations=100)
        assert long.log_likelihood >= short.log_likelihood - 1e-9

    def test_convergence_flag(self):
        rng = _rng(6)
        z = 40.0 + rng.exponential(10.0, size=300)
        grid = np.arange(0.0, 100.0, 2.0)
        result = em_deconvolve(z, _exp_noise_pdf(10.0), grid, max_iterations=2000)
        assert result.converged
        assert result.iterations < 2000

    def test_unexplainable_observations_dropped(self):
        """Exponential noise cannot explain z below the whole grid."""
        z = np.array([5.0, 60.0, 70.0])
        grid = np.arange(50.0, 100.0, 2.0)
        result = em_deconvolve(z, _exp_noise_pdf(10.0), grid)
        assert result.density.sum() == pytest.approx(1.0)

    def test_all_unexplainable_raises(self):
        z = np.array([5.0, 6.0])
        grid = np.arange(50.0, 100.0, 2.0)
        with pytest.raises(ValueError):
            em_deconvolve(z, _exp_noise_pdf(10.0), grid)

    def test_validation(self):
        grid = np.arange(0.0, 10.0, 1.0)
        with pytest.raises(ValueError):
            em_deconvolve(np.array([]), _exp_noise_pdf(1.0), grid)
        with pytest.raises(ValueError):
            em_deconvolve(np.array([1.0]), _exp_noise_pdf(1.0), np.array([1.0]))
        with pytest.raises(ValueError):
            em_deconvolve(
                np.array([1.0]), _exp_noise_pdf(1.0), np.array([0.0, 1.0, 5.0])
            )

    def test_cdf(self):
        rng = _rng(7)
        z = 30.0 + rng.exponential(5.0, size=300)
        grid = np.arange(0.0, 80.0, 2.0)
        result = em_deconvolve(z, _exp_noise_pdf(5.0), grid)
        cdf = result.cdf()
        assert cdf[-1] == pytest.approx(1.0)
        assert np.all(np.diff(cdf) >= -1e-12)


class TestTotalVariation:
    def test_identical_is_zero(self):
        p = np.array([0.25, 0.25, 0.5])
        assert total_variation_distance(p, p) == 0.0

    def test_disjoint_is_one(self):
        assert total_variation_distance(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        ) == pytest.approx(1.0)

    def test_normalizes_inputs(self):
        assert total_variation_distance(
            np.array([2.0, 2.0]), np.array([5.0, 5.0])
        ) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            total_variation_distance(np.array([1.0]), np.array([1.0, 0.0]))
        with pytest.raises(ValueError):
            total_variation_distance(np.array([0.0]), np.array([1.0]))


class TestDistributionAdversaryExperiment:
    def test_case_ordering(self):
        """No-delay ~ exact; unlimited decent; RCAD badly corrupted."""
        from repro.experiments.distribution_adversary import (
            distribution_adversary_experiment,
        )

        rows = {r.case: r for r in distribution_adversary_experiment(
            n_packets=300, seed=2)}
        assert rows["no-delay"].tv_distance < 0.05
        assert rows["no-delay"].tv_distance < rows["unlimited"].tv_distance
        assert rows["unlimited"].tv_distance < rows["rcad"].tv_distance
        assert rows["rcad"].tv_distance > 0.4

    def test_rcad_biases_reconstructed_mean(self):
        from repro.experiments.distribution_adversary import (
            distribution_adversary_experiment,
        )

        rows = {r.case: r for r in distribution_adversary_experiment(
            n_packets=300, seed=3)}
        # The adversary deconvolves too much delay: the reconstructed
        # pattern lands earlier than the truth.
        assert rows["rcad"].reconstructed_mean < rows["rcad"].true_mean - 50.0
        assert abs(
            rows["unlimited"].reconstructed_mean - rows["unlimited"].true_mean
        ) < 30.0
