"""Unit tests for phantom routing and the backtracing adversary."""

import numpy as np
import pytest

from repro.location.backtrace import BacktracingAdversary
from repro.location.policies import PhantomRoutingPolicy, TreeRoutingPolicy
from repro.net.routing import greedy_grid_tree, shortest_path_tree
from repro.net.topology import grid_deployment, line_deployment, paper_topology
from repro.sim.config import BufferSpec, FlowSpec, SimulationConfig
from repro.sim.simulator import SensorNetworkSimulator
from repro.traffic.generators import PeriodicTraffic


def _rng(seed=0):
    return np.random.Generator(np.random.PCG64(seed))


class TestTreeRoutingPolicy:
    def test_follows_tree(self):
        deployment = line_deployment(hops=4)
        tree = shortest_path_tree(deployment)
        policy = TreeRoutingPolicy(tree)
        policy.first_hop_state((1, 0))
        assert policy.next_hop(0, (1, 0), _rng()) == 1
        assert policy.next_hop(3, (1, 0), _rng()) == 4


class TestPhantomRoutingPolicy:
    def _policy(self, walk_length=3):
        deployment = grid_deployment(width=6, height=6)
        tree = greedy_grid_tree(deployment, width=6)
        return deployment, tree, PhantomRoutingPolicy(tree, deployment, walk_length)

    def test_walk_steps_to_neighbors(self):
        deployment, _, policy = self._policy(walk_length=3)
        packet = (1, 0)
        policy.first_hop_state(packet)
        node = 5 * 6 + 5  # far corner
        graph = deployment.connectivity_graph()
        hop = policy.next_hop(node, packet, _rng())
        assert hop in set(graph.neighbors(node))

    def test_walk_never_steps_onto_sink(self):
        deployment, _, policy = self._policy(walk_length=50)
        packet = (1, 0)
        policy.first_hop_state(packet)
        node = 1  # adjacent to the sink (node 0)
        for _ in range(50):
            hop = policy.next_hop(node, packet, _rng())
            assert hop != deployment.sink
            node = hop

    def test_after_walk_follows_tree(self):
        deployment, tree, policy = self._policy(walk_length=2)
        packet = (1, 7)
        policy.first_hop_state(packet)
        node = 3 * 6 + 3
        rng = _rng(1)
        node = policy.next_hop(node, packet, rng)   # walk step 1
        node = policy.next_hop(node, packet, rng)   # walk step 2
        assert policy.next_hop(node, packet, rng) == tree.next_hop(node)

    def test_zero_walk_is_tree_routing(self):
        deployment, tree, policy = self._policy(walk_length=0)
        packet = (1, 0)
        policy.first_hop_state(packet)
        node = 2 * 6 + 4
        assert policy.next_hop(node, packet, _rng()) == tree.next_hop(node)

    def test_per_packet_state_isolated(self):
        _, tree, policy = self._policy(walk_length=1)
        policy.first_hop_state((1, 0))
        policy.first_hop_state((1, 1))
        node = 3 * 6 + 3
        rng = _rng(2)
        policy.next_hop(node, (1, 0), rng)  # consumes packet 0's walk
        # Packet 1's walk budget is untouched: its next hop is a walk
        # step (may or may not equal the tree hop), and after that it
        # must follow the tree.
        node_1 = policy.next_hop(node, (1, 1), rng)
        assert policy.next_hop(node_1, (1, 1), rng) == tree.next_hop(node_1)

    def test_validation(self):
        deployment = grid_deployment(width=3, height=3)
        tree = greedy_grid_tree(deployment, width=3)
        with pytest.raises(ValueError):
            PhantomRoutingPolicy(tree, deployment, walk_length=-1)


class TestBacktracingAdversary:
    def test_walks_reverse_path(self):
        # Packets 3 -> 2 -> 1 -> 0(sink), one per 10 time units.
        log = []
        for i in range(6):
            base = 10.0 * i
            log += [(base, 3, 2), (base + 1, 2, 1), (base + 2, 1, 0)]
        log.sort()
        outcome = BacktracingAdversary(sink=0, relocation_delay=1.0).hunt(
            log, target_source=3
        )
        assert outcome.captured
        assert outcome.visited == (0, 1, 2, 3)
        assert outcome.moves == 3

    def test_misses_transmissions_while_relocating(self):
        # Two arrivals at the sink in quick succession: a slow
        # adversary can only use the first.
        log = [(0.0, 1, 0), (0.5, 1, 0), (100.0, 2, 1), (200.0, 3, 2)]
        outcome = BacktracingAdversary(sink=0, relocation_delay=5.0).hunt(
            log, target_source=3
        )
        assert outcome.captured
        assert outcome.capture_time == 200.0

    def test_ignores_out_of_range_transmissions(self):
        log = [(0.0, 5, 4), (1.0, 9, 8)]  # nothing arrives at the sink
        outcome = BacktracingAdversary(sink=0).hunt(log, target_source=5)
        assert not outcome.captured
        assert outcome.moves == 0

    def test_unsorted_log_rejected(self):
        with pytest.raises(ValueError):
            BacktracingAdversary(sink=0).hunt(
                [(5.0, 1, 0), (1.0, 2, 1)], target_source=2
            )

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            BacktracingAdversary(sink=0, relocation_delay=-1.0)


class TestSimulatorIntegration:
    def _run(self, policy, record=True, n_packets=30):
        deployment = line_deployment(hops=4)
        tree = shortest_path_tree(deployment)
        config = SimulationConfig(
            deployment=deployment, tree=tree,
            flows=[FlowSpec(flow_id=1, source=0,
                            traffic=PeriodicTraffic(5.0), n_packets=n_packets)],
            delay_plan=None, buffers=BufferSpec(kind="infinite"),
            routing_policy=policy, record_transmissions=record, seed=3,
        )
        return SensorNetworkSimulator(config).run(), deployment, tree

    def test_transmission_log_recorded(self):
        result, _, _ = self._run(policy=None)
        assert len(result.transmissions) == 30 * 4
        times = [t for t, _, _ in result.transmissions]
        assert times == sorted(times)

    def test_no_log_by_default(self):
        result, _, _ = self._run(policy=None, record=False)
        assert result.transmissions == []

    def test_backtrace_on_line_captures_in_hop_count_moves(self):
        result, deployment, _ = self._run(policy=None)
        outcome = BacktracingAdversary(sink=deployment.sink).hunt(
            result.transmissions, target_source=0
        )
        assert outcome.captured
        assert outcome.moves == 4

    def test_phantom_routing_inflates_hop_counts(self):
        deployment = paper_topology()
        tree = greedy_grid_tree(deployment, width=12)
        source = deployment.node_for_label("S3")  # 9 tree hops
        policy = PhantomRoutingPolicy(tree, deployment, walk_length=6)
        config = SimulationConfig(
            deployment=deployment, tree=tree,
            flows=[FlowSpec(flow_id=1, source=source,
                            traffic=PeriodicTraffic(5.0), n_packets=40)],
            delay_plan=None, buffers=BufferSpec(kind="infinite"),
            routing_policy=policy, seed=4,
        )
        result = SensorNetworkSimulator(config).run()
        hop_counts = {o.hop_count for o in result.observations}
        assert all(h >= 9 for h in hop_counts)  # never shorter than tree
        assert any(h > 9 for h in hop_counts)   # walks lengthen paths
        # Header hop counts stay truthful: latency = hops * tau exactly.
        for record, obs in zip(result.records, result.observations):
            assert record.latency == pytest.approx(obs.hop_count * 1.0)


class TestSpatioTemporalExperiment:
    def test_2x2_shape_and_claims(self):
        from repro.experiments.spatiotemporal import spatiotemporal_experiment

        rows = spatiotemporal_experiment(n_packets=150, seed=5)
        cells = {(row.routing, row.buffering): row for row in rows}
        assert len(cells) == 4
        # Phantom alone buys no temporal privacy.
        assert cells[("phantom", "no-delay")].temporal_mse == pytest.approx(
            0.0, abs=1e-9
        )
        # RCAD buys temporal privacy on both routings.
        assert cells[("tree", "rcad")].temporal_mse > 5e3
        # The undefended cell is captured fastest.
        base = cells[("tree", "no-delay")]
        assert base.captured and base.backtrace_moves == 15
        for cell in cells.values():
            if cell is base or not cell.captured:
                continue
            assert cell.capture_time > base.capture_time

    def test_validation(self):
        from repro.experiments.spatiotemporal import spatiotemporal_experiment

        with pytest.raises(ValueError):
            spatiotemporal_experiment(walk_length=0)


class TestSafetyPeriodSweep:
    def test_walk_lengthens_safety_period(self):
        from repro.experiments.spatiotemporal import safety_period_sweep

        rows = safety_period_sweep(
            walk_lengths=(0, 8), n_packets=150, n_replications=3, base_seed=20
        )
        baseline, phantom = rows
        assert baseline.capture_fraction == 1.0
        assert baseline.mean_safety_period is not None
        if phantom.mean_safety_period is not None:
            assert phantom.mean_safety_period > baseline.mean_safety_period
        else:
            assert phantom.capture_fraction < 1.0

    def test_latency_cost_is_walk_length(self):
        from repro.experiments.spatiotemporal import safety_period_sweep

        rows = safety_period_sweep(
            walk_lengths=(0, 6), n_packets=100, n_replications=2, base_seed=30
        )
        # Each walk step adds about one transmission time unit.
        assert rows[1].mean_latency == pytest.approx(
            rows[0].mean_latency + 6.0, abs=2.5
        )

    def test_validation(self):
        from repro.experiments.spatiotemporal import safety_period_sweep

        with pytest.raises(ValueError):
            safety_period_sweep(walk_lengths=(-1,), n_replications=1)
        with pytest.raises(ValueError):
            safety_period_sweep(n_replications=0)
