"""Bit-identical determinism: parallel sweeps equal serial sweeps.

The non-negotiable property of the runtime layer: because every
simulation derives all randomness from its configuration's seed via
named RNG streams, ``--jobs N`` must produce byte-identical results to
the serial loop -- asserted here with ``==`` on floats, not approx.
"""

from repro.analysis.sweep import sweep
from repro.experiments.common import build_adversary, run_paper_case, score_flow
from repro.runtime import use_runtime

LOADS = (2.0, 10.0, 20.0)


def _series(interarrival: float):
    result = run_paper_case(
        interarrival=interarrival, case="rcad", n_packets=80, seed=5
    )
    metrics = score_flow(result, build_adversary("adaptive", "rcad"), flow_id=1)
    return (
        [r.created_at for r in result.records],
        [r.delivered_at for r in result.records],
        [r.hop_count for r in result.records],
        metrics,
    )


class TestParallelDeterminism:
    def test_simulation_series_bit_identical(self):
        serial = sweep(list(LOADS), _series)
        with use_runtime(jobs=4):
            parallel = sweep(list(LOADS), _series)

        for (s_create, s_arrive, s_hops, s_metrics), (
            p_create, p_arrive, p_hops, p_metrics,
        ) in zip(serial, parallel):
            assert s_create == p_create
            assert s_arrive == p_arrive
            assert s_hops == p_hops

    def test_flow_metrics_bit_identical(self):
        serial = sweep(list(LOADS), _series)
        with use_runtime(jobs=4):
            parallel = sweep(list(LOADS), _series)

        for (_, _, _, s_metrics), (_, _, _, p_metrics) in zip(serial, parallel):
            assert s_metrics.mse == p_metrics.mse
            assert s_metrics.rmse == p_metrics.rmse
            assert s_metrics.n_packets == p_metrics.n_packets
            assert s_metrics.latency.mean == p_metrics.latency.mean
            assert s_metrics.latency.p95 == p_metrics.latency.p95

    def test_figure_drivers_bit_identical(self):
        from repro.experiments.fig2 import figure2
        from repro.experiments.fig3 import figure3

        serial2 = figure2(interarrivals=LOADS, n_packets=60, seed=2)
        serial3 = figure3(interarrivals=LOADS, n_packets=60, seed=2)
        with use_runtime(jobs=4):
            parallel2 = figure2(interarrivals=LOADS, n_packets=60, seed=2)
            parallel3 = figure3(interarrivals=LOADS, n_packets=60, seed=2)

        for s_table, p_table in zip(serial2 + (serial3,), parallel2 + (parallel3,)):
            for s, p in zip(s_table.series, p_table.series):
                assert s.label == p.label
                assert s.x_values == p.x_values
                assert s.y_values == p.y_values

    def test_simulation_count_survives_worker_merge(self):
        with use_runtime(jobs=4) as ctx:
            sweep(list(LOADS), _series)
        assert ctx.stats.simulations == len(LOADS)


class TestFabricDeterminism:
    """The distributed fabric is held to the same bar as --jobs N:
    bit-identical to the serial executor, asserted with ``==``."""

    def test_fabric_bit_identical_to_serial(self, tmp_path):
        from repro.experiments.fig2 import fig2_cell, fig2_cells
        from repro.runtime.fabric import FabricConfig, run_fabric

        cells = fig2_cells(LOADS, n_packets=60, seed=2)
        serial = [fig2_cell(cell) for cell in cells]
        results, report = run_fabric(
            fig2_cell, cells,
            config=FabricConfig(
                workers=2, lease_ttl=10.0, heartbeat_interval=1.0,
                poll_interval=0.05, fabric_dir=tmp_path / "fab",
            ),
            label="determinism",
        )
        assert results == serial  # == on floats, not approx
        assert not report.degraded
        assert not report.failed

    def test_fabric_tables_bit_identical_to_figure2(self, tmp_path):
        from repro.experiments.fig2 import (
            fig2_cell,
            fig2_cells,
            fig2_tables,
            figure2,
        )
        from repro.runtime.fabric import FabricConfig, run_fabric

        serial_mse, serial_latency = figure2(
            interarrivals=LOADS, n_packets=60, seed=2
        )
        cells = fig2_cells(LOADS, n_packets=60, seed=2)
        results, _ = run_fabric(
            fig2_cell, cells,
            config=FabricConfig(
                workers=2, lease_ttl=10.0, heartbeat_interval=1.0,
                poll_interval=0.05, fabric_dir=tmp_path / "fab",
            ),
            label="tables",
        )
        fabric_mse, fabric_latency = fig2_tables(cells, results)
        for serial_table, fabric_table in (
            (serial_mse, fabric_mse), (serial_latency, fabric_latency)
        ):
            for s, p in zip(serial_table.series, fabric_table.series):
                assert s.label == p.label
                assert s.x_values == p.x_values
                assert s.y_values == p.y_values
