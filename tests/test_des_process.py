"""Unit tests for generator-based processes."""

import pytest

from repro.des import (
    DesError,
    EventCancelled,
    Process,
    ProcessEvent,
    Simulator,
    Timeout,
    WaitEvent,
)


class TestTimeout:
    def test_timeout_advances_process(self):
        sim = Simulator()
        trace = []

        def body():
            trace.append(sim.now)
            yield Timeout(5.0)
            trace.append(sim.now)

        Process(sim, body())
        sim.run()
        assert trace == [0.0, 5.0]

    def test_body_runs_to_first_yield_immediately(self):
        sim = Simulator()
        trace = []

        def body():
            trace.append("started")
            yield Timeout(1.0)

        Process(sim, body())
        assert trace == ["started"]

    def test_sequential_timeouts_accumulate(self):
        sim = Simulator()
        trace = []

        def body():
            for _ in range(3):
                yield Timeout(2.0)
                trace.append(sim.now)

        Process(sim, body())
        sim.run()
        assert trace == [2.0, 4.0, 6.0]

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)

    def test_zero_timeout_allowed(self):
        sim = Simulator()
        done = []

        def body():
            yield Timeout(0.0)
            done.append(sim.now)

        Process(sim, body())
        sim.run()
        assert done == [0.0]


class TestEvents:
    def test_wait_event_resumes_with_value(self):
        sim = Simulator()
        event = ProcessEvent()
        got = []

        def waiter():
            value = yield WaitEvent(event)
            got.append((sim.now, value))

        Process(sim, waiter())
        sim.schedule(3.0, event.trigger, "payload")
        sim.run()
        assert got == [(3.0, "payload")]

    def test_bare_event_yield_also_waits(self):
        sim = Simulator()
        event = ProcessEvent()
        got = []

        def waiter():
            value = yield event
            got.append(value)

        Process(sim, waiter())
        sim.schedule(1.0, event.trigger, 42)
        sim.run()
        assert got == [42]

    def test_already_triggered_event_resumes_immediately(self):
        sim = Simulator()
        event = ProcessEvent()
        event.trigger("early")
        got = []

        def waiter():
            got.append((yield WaitEvent(event)))

        Process(sim, waiter())
        assert got == ["early"]

    def test_multiple_waiters_all_resume(self):
        sim = Simulator()
        event = ProcessEvent()
        got = []

        def waiter(tag):
            value = yield WaitEvent(event)
            got.append((tag, value))

        Process(sim, waiter("a"))
        Process(sim, waiter("b"))
        sim.schedule(1.0, event.trigger, "x")
        sim.run()
        assert sorted(got) == [("a", "x"), ("b", "x")]

    def test_double_trigger_raises(self):
        event = ProcessEvent()
        event.trigger()
        with pytest.raises(DesError):
            event.trigger()

    def test_event_value_and_triggered_flags(self):
        event = ProcessEvent()
        assert not event.triggered and event.value is None
        event.trigger(17)
        assert event.triggered and event.value == 17


class TestJoinAndResult:
    def test_joining_a_process_waits_for_it(self):
        sim = Simulator()
        trace = []

        def worker():
            yield Timeout(4.0)
            trace.append("worker done")
            return "result"

        def boss():
            worker_proc = Process(sim, worker())
            value = yield worker_proc
            trace.append(("boss saw", value, sim.now))

        Process(sim, boss())
        sim.run()
        assert trace == ["worker done", ("boss saw", "result", 4.0)]

    def test_result_and_alive(self):
        sim = Simulator()

        def body():
            yield Timeout(1.0)
            return 99

        proc = Process(sim, body())
        assert proc.alive and proc.result is None
        sim.run()
        assert not proc.alive and proc.result == 99

    def test_yield_garbage_raises(self):
        sim = Simulator()

        def body():
            yield "not a wait request"

        with pytest.raises(DesError):
            Process(sim, body())


class TestInterrupt:
    def test_interrupt_terminates_uncaught(self):
        sim = Simulator()

        def body():
            yield Timeout(100.0)

        proc = Process(sim, body())
        proc.interrupt()
        assert not proc.alive
        sim.run()
        assert sim.now == 0.0  # the pending timeout was cancelled

    def test_interrupt_can_be_caught(self):
        sim = Simulator()
        trace = []

        def body():
            try:
                yield Timeout(100.0)
            except EventCancelled:
                trace.append("interrupted")
                yield Timeout(1.0)
                trace.append(sim.now)

        proc = Process(sim, body())
        proc.interrupt()
        sim.run()
        assert trace == ["interrupted", 1.0]
        assert not proc.alive

    def test_interrupt_finished_process_is_noop(self):
        sim = Simulator()

        def body():
            yield Timeout(1.0)

        proc = Process(sim, body())
        sim.run()
        proc.interrupt()  # must not raise
        assert not proc.alive


class TestProducerConsumer:
    def test_two_processes_interleave(self):
        """A miniature source/sink pair built only from DES primitives."""
        sim = Simulator()
        queue = []
        delivered = []

        def producer():
            for i in range(3):
                yield Timeout(2.0)
                queue.append((sim.now, i))

        def consumer():
            while len(delivered) < 3:
                yield Timeout(1.0)
                while queue:
                    delivered.append(queue.pop(0))

        Process(sim, producer())
        Process(sim, consumer())
        sim.run(max_events=100)
        assert [item for _, item in delivered] == [0, 1, 2]
        assert all(t in (2.0, 4.0, 6.0) for t, _ in delivered)
