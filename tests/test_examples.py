"""Smoke tests: every example script runs and says what it promises.

Examples are documentation that can rot; these tests execute each one
in a subprocess (with small arguments where the script takes any) and
assert on a signature line of its output.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

#: script name -> (argv suffix, a string its stdout must contain)
EXAMPLES = {
    "quickstart.py": (["2", "60"], "Delay&LimitedBuffers"),
    "paper_topology_tour.py": (["4"], "Section 4 quantities"),
    "adversary_escalation.py": (["2"], "model-based"),
    "mix_showdown.py": (["20"], "stop-and-go"),
    "des_engine_tour.py": (["0.5"], "Little ratio"),
    "asset_tracking_demo.py": (["0.05"], "localization error"),
    "spatiotemporal_defense.py": (["6"], "safety period"),
    "packet_forensics.py": ([], "preempted"),
    "habitat_monitoring.py": ([], "hunter"),
    "buffer_provisioning.py": ([], "erlang-target"),
}


def _run(script: str, args: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.mark.parametrize("script", sorted(EXAMPLES), ids=lambda s: s[:-3])
def test_example_runs(script):
    args, marker = EXAMPLES[script]
    completed = _run(script, args)
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert marker in completed.stdout, (
        f"{script} output lacks {marker!r}:\n{completed.stdout[:2000]}"
    )


def test_every_example_is_covered():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXAMPLES), (
        "examples/ and the smoke-test registry disagree: "
        f"missing={on_disk - set(EXAMPLES)}, stale={set(EXAMPLES) - on_disk}"
    )
