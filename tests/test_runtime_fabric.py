"""Distributed sweep fabric: leases, stealing, crash recovery, merging.

The acceptance property (ISSUE 7): a fabric run with >= 2 workers, one
of them SIGKILLed mid-cell, completes with zero lost cells and output
bit-identical to the serial executor.
"""

import json
import os
import signal
import threading
import time
from pathlib import Path

import pytest

from repro.runtime.executors import SerialExecutor
from repro.runtime.fabric import (
    FabricConfig,
    FabricError,
    FabricWorker,
    FilesystemClock,
    Heartbeat,
    LeaseBoard,
    ResultsScanner,
    _heartbeat_payload_fresh,
    function_ref,
    load_grid,
    resolve_function_ref,
    run_fabric,
    write_grid,
)


def _square(x):
    return x * x


def _fast_config(fabric_dir, workers=2, **overrides):
    defaults = dict(
        workers=workers,
        lease_ttl=1.0,
        heartbeat_interval=0.25,
        poll_interval=0.05,
        fabric_dir=fabric_dir,
        cache_dir=None,
    )
    defaults.update(overrides)
    return FabricConfig(**defaults)


class TestFabricConfig:
    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError, match="workers must be non-negative"):
            FabricConfig(workers=-1)

    def test_rejects_non_positive_lease_ttl(self):
        with pytest.raises(ValueError, match="lease_ttl must be positive"):
            FabricConfig(lease_ttl=0)

    def test_rejects_heartbeat_at_or_above_ttl(self):
        with pytest.raises(ValueError, match="below lease_ttl"):
            FabricConfig(lease_ttl=5.0, heartbeat_interval=5.0)

    def test_heartbeat_defaults_to_third_of_ttl(self):
        assert FabricConfig(lease_ttl=9.0).effective_heartbeat_interval == 3.0


class TestFunctionRef:
    def test_importable_function_round_trips(self):
        ref = function_ref(_square)
        assert ref is not None and ref.endswith(":_square")
        assert resolve_function_ref(ref) is _square

    def test_closure_has_no_ref(self):
        def local(x):
            return x

        assert function_ref(local) is None
        assert function_ref(lambda x: x) is None

    def test_malformed_ref_raises(self):
        with pytest.raises(FabricError):
            resolve_function_ref("no-colon")


class TestGrid:
    def test_round_trip(self, tmp_path):
        items = [(i, "x" * i) for i in range(5)]
        write_grid(tmp_path, "sweep123", "label", items, None, FabricConfig())
        header, loaded = load_grid(tmp_path)
        assert header["sweep"] == "sweep123"
        assert header["n_items"] == 5
        assert loaded == items

    def test_missing_grid_raises(self, tmp_path):
        with pytest.raises(FabricError, match="no grid"):
            load_grid(tmp_path)

    def test_torn_grid_is_fatal(self, tmp_path):
        write_grid(tmp_path, "s", "l", [1, 2, 3], None, FabricConfig())
        lines = (tmp_path / "grid.jsonl").read_text().splitlines()
        (tmp_path / "grid.jsonl").write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(FabricError, match="torn grid"):
            load_grid(tmp_path)

    def test_corrupt_item_checksum_is_fatal(self, tmp_path):
        write_grid(tmp_path, "s", "l", [1, 2], None, FabricConfig())
        path = tmp_path / "grid.jsonl"
        lines = path.read_text().splitlines()
        entry = json.loads(lines[1])
        entry["sha"] = "0" * 64
        lines[1] = json.dumps(entry)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(FabricError, match="corrupt grid item"):
            load_grid(tmp_path)


class TestLeaseBoard:
    def test_first_claim_wins_second_loses(self, tmp_path):
        a = LeaseBoard(tmp_path, "a", lease_ttl=60.0)
        b = LeaseBoard(tmp_path, "b", lease_ttl=60.0)
        claimed, victim = a.try_claim(0)
        assert claimed and victim is None
        claimed, victim = b.try_claim(0)
        assert not claimed

    def test_live_heartbeat_blocks_steal(self, tmp_path):
        a = LeaseBoard(tmp_path, "a", lease_ttl=0.1)
        hb = Heartbeat(tmp_path, "a", lease_ttl=60.0, interval=10.0)
        hb.beat()  # fresh heartbeat with a 60s deadline
        a.try_claim(0)
        time.sleep(0.2)  # claim is older than the TTL...
        b = LeaseBoard(tmp_path, "b", lease_ttl=0.1)
        claimed, _ = b.try_claim(0)
        assert not claimed  # ...but the owner is demonstrably alive

    def test_expired_lease_is_stolen_with_epoch_bump(self, tmp_path):
        a = LeaseBoard(tmp_path, "a", lease_ttl=0.1)
        a.try_claim(0)  # worker "a" never heartbeats
        time.sleep(0.2)
        b = LeaseBoard(tmp_path, "b", lease_ttl=0.1)
        claimed, victim = b.try_claim(0)
        assert claimed and victim == "a"
        lease = b.read(0)
        assert lease.worker == "b"
        assert lease.epoch == 1
        assert lease.stolen_from == "a"

    def test_departed_worker_lease_expires_by_claim_age(self, tmp_path):
        a = LeaseBoard(tmp_path, "a", lease_ttl=0.1)
        hb = Heartbeat(tmp_path, "a", lease_ttl=0.1, interval=10.0)
        hb.beat(left=True)  # clean exit: deadline = now, left flag set
        a.try_claim(0)
        time.sleep(0.2)
        claimed, victim = LeaseBoard(tmp_path, "b", lease_ttl=0.1).try_claim(0)
        assert claimed and victim == "a"

    def test_torn_lease_file_becomes_stealable(self, tmp_path):
        board = LeaseBoard(tmp_path, "b", lease_ttl=0.1)
        board.directory.mkdir(parents=True)
        (board.path(0)).write_text('{"kind": "lea')  # killed mid-create
        time.sleep(0.2)
        claimed, _ = board.try_claim(0)
        assert claimed

    def test_stats_count_claims_and_steals(self, tmp_path):
        a = LeaseBoard(tmp_path, "a", lease_ttl=0.05)
        a.try_claim(0)
        a.try_claim(1)
        time.sleep(0.1)
        b = LeaseBoard(tmp_path, "b", lease_ttl=0.05)
        b.try_claim(1)
        claims, steals = b.stats()
        assert claims == 2
        assert steals == 1

    def test_same_worker_reclaim_is_idempotent(self, tmp_path):
        """At-least-once RPC delivery may replay a claim whose response
        was lost; the owner must see success, not a deadlock."""
        a = LeaseBoard(tmp_path, "a", lease_ttl=60.0)
        assert a.try_claim(0) == (True, None)
        assert a.try_claim(0) == (True, None)
        assert a.read(0).epoch == 0


class _SkewedClock:
    """A worker whose wall clock runs one hour fast (no correction)."""

    def __init__(self, skew=3600.0):
        self.skew = skew

    def now(self):
        return time.time() + self.skew


class TestClockSkew:
    """Cross-host skew regression: a worker with a fast wall clock must
    not prematurely steal a live lease (ISSUE 9 satellite)."""

    def test_filesystem_clock_measures_local_skew(self, tmp_path):
        skewed = FilesystemClock(
            tmp_path, time_fn=lambda: time.time() + 3600.0
        )
        offset = skewed.sample()
        # Probe mtimes come from the (unskewed) filesystem, so the
        # measured offset cancels the injected skew.
        assert offset == pytest.approx(-3600.0, abs=5.0)
        assert skewed.now() == pytest.approx(time.time(), abs=5.0)

    def test_filesystem_clock_survives_unwritable_directory(self, tmp_path):
        clock = FilesystemClock(tmp_path / "missing" / "x" / "y")
        # mkdir will create it; point at a file to force the OSError path.
        (tmp_path / "blocked").write_text("")
        clock = FilesystemClock(tmp_path / "blocked" / "sub")
        assert clock.sample() == 0.0
        assert clock.now() == pytest.approx(time.time(), abs=5.0)

    def test_uncorrected_fast_clock_steals_a_live_lease(self, tmp_path):
        """The hazard itself: with raw wall clocks, one hour of skew
        makes a fresh lease look expired."""
        a = LeaseBoard(tmp_path, "a", lease_ttl=60.0)
        Heartbeat(tmp_path, "a", lease_ttl=60.0, interval=10.0).beat()
        a.try_claim(0)
        rogue = LeaseBoard(
            tmp_path, "b", lease_ttl=60.0, clock=_SkewedClock()
        )
        claimed, victim = rogue.try_claim(0)
        assert claimed and victim == "a"  # the bug this PR fixes

    def test_corrected_fast_clock_cannot_steal_a_live_lease(self, tmp_path):
        """The fix: the same skewed worker, using FilesystemClock,
        judges lease and heartbeat ages in fileserver time."""
        a = LeaseBoard(tmp_path, "a", lease_ttl=60.0)
        Heartbeat(tmp_path, "a", lease_ttl=60.0, interval=10.0).beat()
        a.try_claim(0)
        corrected = FilesystemClock(
            tmp_path, time_fn=lambda: time.time() + 3600.0
        )
        b = LeaseBoard(tmp_path, "b", lease_ttl=60.0, clock=corrected)
        claimed, _ = b.try_claim(0)
        assert not claimed

    def test_skewed_writer_lease_age_anchored_to_mtime(self, tmp_path):
        """A lease whose recorded claimed_at is absurd (skewed writer)
        ages by its file mtime, not the recorded timestamp."""
        a = LeaseBoard(tmp_path, "a", lease_ttl=60.0)
        a.try_claim(0)
        # Rewrite the lease with a claimed_at one hour in the past, as
        # a slow-clocked writer would have stamped it.
        lease = a.read(0)
        payload = lease.to_json()
        payload["claimed_at"] = time.time() - 3600.0
        a.path(0).write_text(json.dumps(payload))
        b = LeaseBoard(tmp_path, "b", lease_ttl=60.0)
        claimed, _ = b.try_claim(0)
        assert not claimed  # file is seconds old, whatever it claims

    def test_heartbeat_freshness_ignores_writer_deadline_when_ttl_present(
        self, tmp_path
    ):
        """A heartbeat from a slow-clocked worker records a deadline
        that is already past; freshness must come from mtime + ttl."""
        path = tmp_path / "workers" / "a.json"
        path.parent.mkdir(parents=True)
        payload = {
            "kind": "heartbeat",
            "worker": "a",
            "deadline": time.time() - 3600.0,  # skewed writer's clock
            "ttl": 60.0,
            "left": False,
        }
        path.write_text(json.dumps(payload))
        assert _heartbeat_payload_fresh(path, payload, time.time()) is True

    def test_heartbeat_freshness_falls_back_to_deadline_without_ttl(
        self, tmp_path
    ):
        path = tmp_path / "workers" / "a.json"
        path.parent.mkdir(parents=True)
        fresh = {"kind": "heartbeat", "deadline": time.time() + 60.0}
        stale = {"kind": "heartbeat", "deadline": time.time() - 60.0}
        path.write_text(json.dumps(fresh))
        assert _heartbeat_payload_fresh(path, fresh, time.time()) is True
        assert _heartbeat_payload_fresh(path, stale, time.time()) is False

    def test_left_heartbeat_is_never_fresh(self, tmp_path):
        path = tmp_path / "workers" / "a.json"
        path.parent.mkdir(parents=True)
        payload = {"kind": "heartbeat", "ttl": 60.0, "left": True}
        path.write_text(json.dumps(payload))
        assert _heartbeat_payload_fresh(path, payload, time.time()) is False


class TestResultsScanner:
    def _write(self, path: Path, lines):
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line)

    def test_torn_trailing_line_waits_for_next_scan(self, tmp_path):
        from repro.runtime.journal import encode_cell_entry

        path = tmp_path / "results" / "w0.jsonl"
        good = json.dumps(encode_cell_entry(0, "done")) + "\n"
        partial = json.dumps(encode_cell_entry(1, "later"))
        self._write(path, [good, partial[:20]])

        scanner = ResultsScanner(tmp_path, n_items=2)
        scanner.scan()
        assert scanner.cells == {0: "done"}
        assert scanner.corrupt_lines == 0  # in-flight, not corrupt

        self._write(path, [partial[20:] + "\n"])
        scanner.scan()
        assert scanner.cells == {0: "done", 1: "later"}

    def test_corrupt_complete_line_is_counted_and_skipped(self, tmp_path):
        from repro.runtime.journal import encode_cell_entry

        path = tmp_path / "results" / "w0.jsonl"
        entry = encode_cell_entry(0, "value")
        entry["sha"] = "0" * 64
        self._write(path, [json.dumps(entry) + "\n", "not json at all\n"])
        scanner = ResultsScanner(tmp_path, n_items=1)
        scanner.scan()
        assert scanner.cells == {}
        assert scanner.corrupt_lines == 2

    def test_failure_record_superseded_by_later_success(self, tmp_path):
        from repro.runtime.journal import encode_cell_entry

        path = tmp_path / "results" / "w0.jsonl"
        self._write(path, [
            json.dumps({"kind": "failed", "index": 0, "error": "boom"}) + "\n",
        ])
        scanner = ResultsScanner(tmp_path, n_items=1)
        scanner.scan()
        assert scanner.failed == {0: "boom"}
        assert scanner.done == {0}

        self._write(
            tmp_path / "results" / "w1.jsonl",
            [json.dumps(encode_cell_entry(0, "recovered")) + "\n"],
        )
        scanner.scan()
        assert scanner.cells == {0: "recovered"}
        assert scanner.failed == {}

    def test_per_worker_counts(self, tmp_path):
        from repro.runtime.journal import encode_cell_entry

        for worker, indices in (("w0", [0, 1]), ("w1", [2])):
            self._write(
                tmp_path / "results" / f"{worker}.jsonl",
                [json.dumps(encode_cell_entry(i, i)) + "\n" for i in indices],
            )
        scanner = ResultsScanner(tmp_path, n_items=3)
        scanner.scan()
        assert scanner.per_worker == {"w0": 2, "w1": 1}


class TestRunFabric:
    def test_matches_serial_executor(self, tmp_path):
        items = list(range(12))
        serial = SerialExecutor().map(_square, items)
        results, report = run_fabric(
            _square, items, config=_fast_config(tmp_path / "fab"), label="sq"
        )
        assert results == serial
        assert not report.degraded
        assert not report.failed
        assert report.computed == 12
        assert sum(report.per_worker.values()) >= 12

    def test_closure_runs_via_fork_inheritance(self, tmp_path):
        offset = 17

        def cell(x):
            return x + offset

        results, report = run_fabric(
            cell, [1, 2, 3], config=_fast_config(tmp_path / "fab"), label="clos"
        )
        assert results == [18, 19, 20]
        # A closure grid carries no fn_ref: external joiners must fail
        # with a clear error instead of computing garbage.
        header, _ = load_grid(report.fabric_dir)
        assert header["fn_ref"] is None
        with pytest.raises(FabricError, match="no importable cell function"):
            FabricWorker(report.fabric_dir, worker_id="ext")

    def test_coordinator_restart_recomputes_nothing(self, tmp_path):
        mark_dir = tmp_path / "marks"
        mark_dir.mkdir()

        def cell(x):
            (mark_dir / f"{x}-{os.getpid()}").touch()
            return x * 3

        config = _fast_config(tmp_path / "fab")
        first, report1 = run_fabric(cell, [1, 2, 3, 4], config=config, label="re")
        n_marks = len(list(mark_dir.iterdir()))
        assert n_marks >= 4

        second, report2 = run_fabric(cell, [1, 2, 3, 4], config=config, label="re")
        assert second == first == [3, 6, 9, 12]
        assert report2.resumed == 4
        assert report2.computed == 0
        assert report2.workers_spawned == 0  # nothing pending, no forks
        assert len(list(mark_dir.iterdir())) == n_marks  # zero recompute

    def test_wrong_sweep_in_fabric_dir_is_rejected(self, tmp_path):
        config = _fast_config(tmp_path / "fab")
        run_fabric(_square, [1, 2], config=config, label="one")
        with pytest.raises(FabricError, match="different sweep"):
            run_fabric(_square, [3, 4, 5], config=config, label="two")

    def test_all_workers_dead_degrades_to_serial(self, tmp_path):
        # Every forked worker dies on its first cell; the coordinator
        # (same pid as the test) must notice, warn, and finish the grid
        # serially in-process.
        main_pid = os.getpid()

        def cell(x):
            if os.getpid() != main_pid:
                os.kill(os.getpid(), signal.SIGKILL)
            return x + 1

        results, report = run_fabric(
            cell, [1, 2, 3],
            config=_fast_config(
                tmp_path / "fab", lease_ttl=0.6, heartbeat_interval=0.2
            ),
            label="dead",
        )
        assert results == [2, 3, 4]
        assert report.degraded
        assert "no live workers" in report.warning
        assert report.per_worker.get("coordinator", 0) >= 1

    def test_failed_cell_is_reported_not_lost(self, tmp_path):
        def cell(x):
            if x == 2:
                raise ValueError("doomed cell")
            return x

        results, report = run_fabric(
            cell, [1, 2, 3], config=_fast_config(tmp_path / "fab"), label="fail"
        )
        assert results[0] == 1 and results[2] == 3
        assert results[1] is None
        assert list(report.failed) == [1]
        assert "doomed cell" in report.failed[1]

    def test_empty_sweep_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="at least one item"):
            run_fabric(_square, [], config=_fast_config(tmp_path / "fab"))

    def test_telemetry_publishes_fabric_counters(self, tmp_path):
        from repro.runtime import use_runtime

        with use_runtime(telemetry=True) as context:
            run_fabric(
                _square, [1, 2, 3],
                config=_fast_config(tmp_path / "fab"), label="tele",
            )
        runs = context.telemetry.runs
        fabric_runs = [(k, rt) for k, rt in runs if k.startswith("fabric:")]
        assert len(fabric_runs) == 1
        _, run_telemetry = fabric_runs[0]
        snapshot = run_telemetry.registry.snapshot()
        assert snapshot["counters"]["fabric/cells-computed"] == 3
        assert snapshot["counters"]["fabric/lease-claims"] == 3
        assert snapshot["gauges"]["fabric/workers"] == 2.0
        per_worker = [
            name for name in snapshot["counters"]
            if name.startswith("fabric/cells-by/")
        ]
        assert per_worker


class TestSigkillRecovery:
    """The headline acceptance test: kill a worker mid-cell, nothing lost."""

    def test_sigkilled_worker_cell_is_stolen_and_rerun(self, tmp_path):
        flag = tmp_path / "block.flag"
        marker = tmp_path / "victim.pid"
        flag.touch()

        def cell(x):
            if x == 99:
                # First executor of this cell announces itself and then
                # blocks while the flag exists; the test SIGKILLs it
                # mid-cell.  The stealing worker finds the flag gone
                # and completes instantly.
                if not marker.exists():
                    marker.write_text(str(os.getpid()))
                    while flag.exists():
                        time.sleep(0.02)
            return x * 2

        items = [1, 2, 99, 3, 4, 5]
        outcome = {}

        def coordinate():
            outcome["out"] = run_fabric(
                cell, items,
                config=_fast_config(
                    tmp_path / "fab", lease_ttl=0.8, heartbeat_interval=0.2
                ),
                label="sigkill",
            )

        thread = threading.Thread(target=coordinate)
        thread.start()
        deadline = time.time() + 30
        while not marker.exists() and time.time() < deadline:
            time.sleep(0.02)
        assert marker.exists(), "no worker ever reached the blocking cell"
        victim_pid = int(marker.read_text())
        os.kill(victim_pid, signal.SIGKILL)
        flag.unlink()  # the re-run must not block
        thread.join(timeout=120)
        assert not thread.is_alive()

        results, report = outcome["out"]
        assert results == [x * 2 for x in items]  # bit-identical, zero lost
        assert not report.failed
        # The victim's lease lapsed and its cell was re-dispatched: the
        # steal is visible either in the lease epochs or in the
        # coordinator's own degraded takeover.
        assert report.steals + report.reclaims >= 1

    def test_worker_journals_survive_torn_final_line(self, tmp_path):
        # A SIGKILL can tear the very line being written; the scanner
        # must treat it as in-flight/corrupt, never crash, and the cell
        # must be recomputed by the next run.
        from repro.runtime.journal import encode_cell_entry, sweep_fingerprint

        results_dir = tmp_path / "fab" / "results"
        results_dir.mkdir(parents=True)
        good = json.dumps(encode_cell_entry(0, 100)) + "\n"
        torn = json.dumps(encode_cell_entry(1, 200))[:25]  # no newline
        (results_dir / "dead-worker.jsonl").write_text(good + torn)

        write_grid(
            tmp_path / "fab",
            sweep_fingerprint("torn", [10, 20]),
            "torn",
            [10, 20],
            None,
            FabricConfig(),
        )

        def cell(x):
            return x + 1000

        results, report = run_fabric(
            cell, [10, 20],
            config=_fast_config(tmp_path / "fab", workers=1),
            label="torn",
        )
        assert results[0] == 100  # the verified line was resumed as-is
        assert results[1] == 1020  # the torn cell was recomputed
        assert report.resumed == 1


class TestExternalWorker:
    def test_worker_joins_and_completes_grid(self, tmp_path):
        from repro.runtime.journal import sweep_fingerprint

        items = [3, 4, 5]
        config = _fast_config(tmp_path / "fab", workers=0)
        write_grid(
            tmp_path / "fab",
            sweep_fingerprint("ext", items),
            "ext",
            items,
            function_ref(_square),
            config,
        )
        worker = FabricWorker(
            tmp_path / "fab", worker_id="ext-1", poll_interval=0.02
        )
        computed = worker.run()
        assert computed == 3

        scanner = ResultsScanner(tmp_path / "fab", n_items=3)
        scanner.scan()
        assert [scanner.cells[i] for i in range(3)] == [9, 16, 25]
