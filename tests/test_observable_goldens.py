"""Golden observable digests: the engine must never silently change.

``tests/data/golden_observables.json`` was captured from the seed
event-driven engine (pre calendar-queue / fast-path rewrite).  Every
configuration in :func:`repro.sim.observables.reference_configs` must
keep producing bit-identical observables — observations, delivery
records, per-node statistics including the float occupancy integrals,
conservation counters, telemetry — under any future engine change.

A failure here means visible simulation output changed.  That is only
ever acceptable for a deliberate, documented behaviour change, in which
case regenerate with ``python scripts/capture_golden_observables.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.sim.observables import (
    observable_digest,
    observable_view,
    reference_configs,
)
from repro.sim.simulator import SensorNetworkSimulator

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_observables.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())["digests"]
CONFIGS = reference_configs()


def test_golden_file_covers_reference_configs():
    assert set(GOLDEN) == set(CONFIGS)


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_observables_match_golden(name):
    result = SensorNetworkSimulator(CONFIGS[name]).run()
    assert observable_digest(result) == GOLDEN[name], (
        f"observable output changed for {name!r}; if deliberate, "
        "regenerate with scripts/capture_golden_observables.py"
    )


def test_observable_view_is_fingerprintable_and_stable():
    result = SensorNetworkSimulator(CONFIGS["fig2-rcad-ia2"]).run()
    view = observable_view(result)
    assert view["records"]
    assert len(view["observations"]) == len(view["records"])
    # Digesting twice must agree (no hidden iteration-order dependence).
    assert observable_digest(result) == observable_digest(result)


def test_telemetry_participates_in_digest():
    result = SensorNetworkSimulator(CONFIGS["poisson-rcad-telemetry"]).run()
    view = observable_view(result)
    assert "telemetry" in view
    assert view["telemetry"]["series"]
