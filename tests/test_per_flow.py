"""Tests for the per-flow privacy experiment."""

import pytest

from repro.experiments.per_flow import FLOW_HOPS, per_flow_privacy


class TestPerFlowPrivacy:
    def test_rows_sorted_by_hop_count(self):
        rows = per_flow_privacy(n_packets=120, seed=3)
        hops = [row.hop_count for row in rows]
        assert hops == sorted(hops) == [9, 11, 15, 22]

    def test_all_flows_present(self):
        rows = per_flow_privacy(n_packets=120, seed=3)
        assert {row.label for row in rows} == {"S1", "S2", "S3", "S4"}
        assert {row.flow_id for row in rows} == set(FLOW_HOPS)

    def test_privacy_grows_with_path_length_rcad(self):
        rows = per_flow_privacy(case="rcad", n_packets=250, seed=4)
        mses = [row.mse for row in rows]
        # Approximately monotone at this sample size (adjacent hop
        # counts 9 vs 11 can swap within noise); endpoints dominate.
        assert all(b > 0.8 * a for a, b in zip(mses, mses[1:]))
        assert mses[-1] > 2 * mses[0]  # S2 (22 hops) >> S3 (9 hops)

    def test_privacy_grows_with_path_length_unlimited(self):
        rows = per_flow_privacy(case="unlimited", n_packets=250, seed=4)
        mses = [row.mse for row in rows]
        assert all(b > 0.8 * a for a, b in zip(mses, mses[1:]))
        assert mses[-1] > 1.5 * mses[0]

    def test_unlimited_mse_tracks_variance_law(self):
        """Case-2 MSE per flow ~ h / mu^2 = 900 h."""
        rows = per_flow_privacy(case="unlimited", n_packets=300, seed=5)
        for row in rows:
            assert row.mse == pytest.approx(900.0 * row.hop_count, rel=0.45)

    def test_latency_grows_with_path_length(self):
        rows = per_flow_privacy(case="rcad", n_packets=200, seed=6)
        latencies = [row.mean_latency for row in rows]
        assert latencies == sorted(latencies)
