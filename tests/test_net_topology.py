"""Unit tests for deployments and topology builders."""

import math

import numpy as np
import pytest

from repro.net.topology import (
    PAPER_HOP_COUNTS,
    PAPER_SOURCE_POSITIONS,
    Deployment,
    grid_deployment,
    line_deployment,
    paper_topology,
    random_geometric_deployment,
)


class TestDeployment:
    def test_distance(self):
        deployment = Deployment(
            positions={0: (0.0, 0.0), 1: (3.0, 4.0)}, sink=0, radio_range=6.0
        )
        assert deployment.distance(0, 1) == pytest.approx(5.0)

    def test_connectivity_graph_edges(self):
        deployment = Deployment(
            positions={0: (0.0, 0.0), 1: (1.0, 0.0), 2: (5.0, 0.0)},
            sink=0,
            radio_range=1.5,
        )
        graph = deployment.connectivity_graph()
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 2)
        assert not deployment.is_connected()

    def test_sink_must_be_deployed(self):
        with pytest.raises(ValueError):
            Deployment(positions={1: (0.0, 0.0)}, sink=0, radio_range=1.0)

    def test_radio_range_positive(self):
        with pytest.raises(ValueError):
            Deployment(positions={0: (0.0, 0.0)}, sink=0, radio_range=0.0)

    def test_label_resolution(self):
        deployment = line_deployment(hops=3)
        assert deployment.node_for_label("S1") == 0
        assert deployment.node_for_label("sink") == 3
        with pytest.raises(KeyError):
            deployment.node_for_label("S9")


class TestLineDeployment:
    def test_node_count_and_sink(self):
        deployment = line_deployment(hops=5)
        assert len(deployment.positions) == 6
        assert deployment.sink == 5

    def test_connected_chain(self):
        assert line_deployment(hops=10).is_connected()

    def test_spacing(self):
        deployment = line_deployment(hops=2, spacing=2.0)
        assert deployment.distance(0, 1) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            line_deployment(hops=0)
        with pytest.raises(ValueError):
            line_deployment(hops=2, spacing=0.0)


class TestGridDeployment:
    def test_shape_and_ids(self):
        deployment = grid_deployment(width=4, height=3)
        assert len(deployment.positions) == 12
        assert deployment.positions[0] == (0.0, 0.0)
        assert deployment.positions[4 * 2 + 3] == (3.0, 2.0)  # row-major

    def test_four_neighbour_connectivity(self):
        deployment = grid_deployment(width=3, height=3)
        graph = deployment.connectivity_graph()
        assert graph.has_edge(0, 1)  # horizontal
        assert graph.has_edge(0, 3)  # vertical
        assert not graph.has_edge(0, 4)  # diagonal out of range

    def test_connected(self):
        assert grid_deployment(width=5, height=5).is_connected()

    def test_validation(self):
        with pytest.raises(ValueError):
            grid_deployment(width=0, height=3)


class TestRandomGeometric:
    def test_connected_by_construction(self):
        rng = np.random.Generator(np.random.PCG64(0))
        deployment = random_geometric_deployment(
            n_nodes=40, area_side=10.0, radio_range=3.0, rng=rng
        )
        assert deployment.is_connected()
        assert len(deployment.positions) == 40

    def test_sink_is_corner_closest(self):
        rng = np.random.Generator(np.random.PCG64(1))
        deployment = random_geometric_deployment(
            n_nodes=30, area_side=10.0, radio_range=3.5, rng=rng
        )
        sink_distance = math.hypot(*deployment.positions[deployment.sink])
        assert all(
            sink_distance <= math.hypot(*pos) + 1e-9
            for pos in deployment.positions.values()
        )

    def test_reproducible_given_seed(self):
        a = random_geometric_deployment(
            20, 10.0, 4.0, np.random.Generator(np.random.PCG64(7))
        )
        b = random_geometric_deployment(
            20, 10.0, 4.0, np.random.Generator(np.random.PCG64(7))
        )
        assert a.positions == b.positions

    def test_impossible_connectivity_raises(self):
        rng = np.random.Generator(np.random.PCG64(2))
        with pytest.raises(RuntimeError):
            random_geometric_deployment(
                n_nodes=30, area_side=100.0, radio_range=0.5, rng=rng, max_attempts=3
            )

    def test_too_few_nodes_rejected(self):
        rng = np.random.Generator(np.random.PCG64(3))
        with pytest.raises(ValueError):
            random_geometric_deployment(1, 10.0, 3.0, rng)


class TestPaperTopology:
    def test_is_a_12x12_grid(self):
        deployment = paper_topology()
        assert len(deployment.positions) == 144
        assert deployment.sink == 0

    def test_source_positions_match_constants(self):
        deployment = paper_topology()
        for label, (x, y) in PAPER_SOURCE_POSITIONS.items():
            node = deployment.node_for_label(label)
            assert deployment.positions[node] == (float(x), float(y))

    def test_manhattan_distances_equal_paper_hop_counts(self):
        """Hop counts 15, 22, 9, 11 are wired into the geometry."""
        deployment = paper_topology()
        for label, hops in PAPER_HOP_COUNTS.items():
            x, y = PAPER_SOURCE_POSITIONS[label]
            assert x + y == hops, label

    def test_connected(self):
        assert paper_topology().is_connected()
