"""Tests for the sensitivity experiments."""

import pytest

from repro.experiments.sensitivity import (
    buffer_size_sweep,
    mean_delay_sweep,
    workload_sensitivity,
)


class TestWorkloadSensitivity:
    def test_all_workloads_reported(self):
        rows = workload_sensitivity(n_packets=100, seed=2)
        assert {row.workload for row in rows} == {
            "periodic", "jittered", "poisson", "on-off",
        }

    def test_privacy_boost_survives_every_workload(self):
        """The RCAD MSE stays far above the case-2 variance scale
        (~1.4e4) whatever the traffic model."""
        rows = workload_sensitivity(n_packets=150, seed=3)
        for row in rows:
            assert row.mse > 3e4, row.workload
            assert row.preemptions > 0, row.workload


class TestBufferSizeSweep:
    def test_privacy_decays_with_memory(self):
        rows = buffer_size_sweep(capacities=(2, 10, 40), n_packets=150, seed=4)
        mses = [row.mse for row in rows]
        assert mses == sorted(mses, reverse=True)

    def test_latency_grows_with_memory(self):
        rows = buffer_size_sweep(capacities=(2, 10, 40), n_packets=150, seed=4)
        latencies = [row.mean_latency for row in rows]
        assert latencies == sorted(latencies)

    def test_preemption_vanishes_above_offered_load(self):
        """rho on the trunk is 60 Erlang at 1/lambda = 2: k = 100
        never fills."""
        rows = buffer_size_sweep(capacities=(100,), n_packets=150, seed=5)
        assert rows[0].preemptions == 0
        # ...and the MSE collapses to the case-2 variance scale.
        assert rows[0].mse < 3e4

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            buffer_size_sweep(capacities=(0,), n_packets=50)


class TestMeanDelaySweep:
    def test_rows_cover_both_cases(self):
        rows = mean_delay_sweep(mean_delays=(15.0, 60.0), n_packets=100, seed=6)
        assert {(row.mean_delay, row.case) for row in rows} == {
            (15.0, "unlimited"), (15.0, "rcad"),
            (60.0, "unlimited"), (60.0, "rcad"),
        }

    def test_unlimited_mse_scales_quadratically(self):
        """Doubling 1/mu roughly quadruples the case-2 MSE (h/mu^2)."""
        rows = mean_delay_sweep(mean_delays=(30.0, 60.0), n_packets=200, seed=7)
        unlimited = {row.mean_delay: row.mse
                     for row in rows if row.case == "unlimited"}
        ratio = unlimited[60.0] / unlimited[30.0]
        assert 2.5 < ratio < 6.5

    def test_rcad_dominates_frontier_at_long_delays(self):
        """At a large advertised delay, RCAD posts both more privacy
        and less latency than the unlimited network."""
        rows = mean_delay_sweep(mean_delays=(120.0,), n_packets=150, seed=8)
        by_case = {row.case: row for row in rows}
        assert by_case["rcad"].mse > by_case["unlimited"].mse
        assert by_case["rcad"].mean_latency < by_case["unlimited"].mean_latency

    def test_invalid_delay_rejected(self):
        with pytest.raises(ValueError):
            mean_delay_sweep(mean_delays=(0.0,), n_packets=50)
