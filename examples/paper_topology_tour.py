#!/usr/bin/env python3
"""A guided tour of the Figure 1 evaluation topology.

Prints everything Figure 1 conveys, as data: the grid, the four source
flows and their hop counts (15, 22, 9, 11), where the paths merge, and
the traffic-accumulation gradient along S1's path with the queueing
quantities Section 4 derives from it (aggregate rate, offered load,
predicted occupancy and Erlang loss at k = 10 slots).

Usage::

    python examples/paper_topology_tour.py [interarrival]
"""

import sys

from repro.experiments.fig1 import topology_summary
from repro.net.routing import greedy_grid_tree
from repro.net.topology import paper_topology
from repro.queueing.erlang import erlang_b
from repro.queueing.tandem import QueueTreeModel

MEAN_DELAY = 30.0
CAPACITY = 10


def main() -> None:
    interarrival = float(sys.argv[1]) if len(sys.argv) > 1 else 4.0
    summary = topology_summary()
    print(summary.render())
    assert all(flow.matches_paper for flow in summary.flows)

    deployment = paper_topology()
    tree = greedy_grid_tree(deployment, width=12)
    sources = {s: deployment.node_for_label(s) for s in ("S1", "S2", "S3", "S4")}
    rate = 1.0 / interarrival
    model = QueueTreeModel(
        parent=dict(tree.parent),
        injection_rates={node: rate for node in sources.values()},
        default_service_rate=1.0 / MEAN_DELAY,
    )

    print(f"\nmerge points (1/lambda = {interarrival:g}, 1/mu = {MEAN_DELAY:g}):")
    paths = {label: tree.path(node) for label, node in sources.items()}
    for label, path in paths.items():
        joins = [
            other for other, other_path in paths.items()
            if other != label and paths[label][0] in other_path
        ]
        note = f"carries {', '.join(joins)}" if joins else "leaf flow"
        print(f"  {label}: {len(path) - 1} hops, source node {path[0]} ({note})")

    print("\nSection 4 quantities along S1's path (source -> sink):")
    print(f"{'hop':>4} {'node':>6} {'lambda_i':>10} {'rho_i':>8} "
          f"{'E[N_i]':>8} {'Erlang loss @k=10':>18}")
    for hop, node in enumerate(paths["S1"][:-1]):
        lam = model.arrival_rate(node)
        rho = model.offered_load(node)
        print(f"{hop:>4} {node:>6} {lam:>10.3f} {rho:>8.2f} "
              f"{model.mean_occupancy(node):>8.2f} "
              f"{erlang_b(rho, CAPACITY):>18.3f}")
    print(
        "\nReading: the offered load rho_i grows stepwise at each merge "
        "point; wherever rho_i approaches or exceeds k = 10, a finite "
        "buffer must drop (Section 4) or preempt (RCAD, Section 5)."
    )


if __name__ == "__main__":
    main()
