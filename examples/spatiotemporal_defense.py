#!/usr/bin/env python3
"""Defending both axes: phantom routing x RCAD.

The paper's introduction frames asset privacy as two questions --
*where* was the asset seen (source location) and *when* (temporal).
The authors' earlier phantom routing answers the first; this paper's
RCAD answers the second.  This example runs the 2x2 on one flow and
scores each cell against both adversaries:

* a timing adversary at the sink (creation-time MSE), and
* a backtracing local eavesdropper that walks the routing path
  backwards one overheard transmission at a time (capture time = the
  "safety period" of the source-location literature).

Usage::

    python examples/spatiotemporal_defense.py [walk_length]
"""

import sys

from repro.experiments.spatiotemporal import spatiotemporal_experiment


def main() -> None:
    walk_length = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    rows = spatiotemporal_experiment(
        walk_length=walk_length, interarrival=4.0, n_packets=300, seed=9
    )
    print(f"flow S1 (15 tree hops), phantom walk length {walk_length}\n")
    print(f"{'routing':>8} {'buffering':>10} {'temporal MSE':>13} "
          f"{'safety period':>14} {'backtrace moves':>16}")
    for row in rows:
        safety = f"{row.capture_time:.0f}" if row.captured else "not captured"
        print(f"{row.routing:>8} {row.buffering:>10} {row.temporal_mse:>13.0f} "
              f"{safety:>14} {row.backtrace_moves:>16}")
    print(
        "\nReading: the defences are orthogonal.  Phantom routing alone "
        "leaves every creation time exactly recoverable (MSE 0); plain "
        "tree routing alone is backtraced in exactly 15 moves however "
        "well the timing is hidden.  Each defence stretches the "
        "backtracer's safety period (phantom by scattering the "
        "near-source hops, RCAD by spacing transmissions out in time), "
        "and only the combination protects the asset in both space and "
        "time -- the spatio-temporal privacy the paper's introduction "
        "calls for."
    )


if __name__ == "__main__":
    main()
