#!/usr/bin/env python3
"""Quickstart: temporal privacy in 60 seconds.

Runs the paper's evaluation scenario (Figure 1 topology, four periodic
sources) at one traffic load for all three cases --

1. NoDelay                 (undefended network),
2. Delay&UnlimitedBuffers  (exponential delays, infinite memory),
3. Delay&LimitedBuffers    (RCAD on 10-slot Mica-2-sized buffers),

-- then lets the deployment-aware baseline adversary estimate every
packet's creation time and prints the paper's two metrics: the
adversary's mean square error (privacy; higher is better) and the mean
end-to-end latency (performance; lower is better).

Usage::

    python examples/quickstart.py [interarrival] [n_packets]
"""

import sys

from repro.experiments.common import build_adversary, run_paper_case, score_flow
from repro.experiments.fig2 import CASE_LABELS


def main() -> None:
    interarrival = float(sys.argv[1]) if len(sys.argv) > 1 else 2.0
    n_packets = int(sys.argv[2]) if len(sys.argv) > 2 else 300

    print(f"paper topology, 4 flows, 1/lambda = {interarrival:g}, "
          f"{n_packets} packets per source, flow S1 scored\n")
    print(f"{'case':>24} {'adversary MSE':>16} {'mean latency':>14} "
          f"{'preemptions':>12}")
    for case, label in CASE_LABELS.items():
        result = run_paper_case(
            interarrival=interarrival, case=case, n_packets=n_packets, seed=42
        )
        metrics = score_flow(result, build_adversary("baseline", case), flow_id=1)
        print(
            f"{label:>24} {metrics.mse:>16.1f} {metrics.latency.mean:>14.2f} "
            f"{result.total_preemptions():>12}"
        )

    print(
        "\nReading: the undefended network leaks creation times exactly "
        "(MSE 0); unlimited buffering leaks almost as much because the "
        "adversary knows the delay distribution (only its variance is "
        "left); RCAD's preemptions make the adversary's model wrong and "
        "the MSE jumps by an order of magnitude -- at *lower* latency "
        "than unlimited buffering."
    )


if __name__ == "__main__":
    main()
