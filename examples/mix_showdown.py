#!/usr/bin/env python3
"""Mix showdown: where the paper's mechanism sits in the mix lineage.

The paper's per-node delaying is Kesdogan's stop-and-go mix, deployed
at every hop of a sensor routing tree (§6).  This example pushes one
Poisson message stream through the four classical designs at an
(approximately) equal mean-latency budget and scores each on both
privacy currencies:

* set anonymity -- the entropy of "which batch-mates could this output
  be?" (what threshold/pool mixes are built for);
* temporal privacy -- how uncertain is the output *time* given the
  input time (what a delay-tolerant sensor network needs).

Usage::

    python examples/mix_showdown.py [target_latency]
"""

import sys

from repro.experiments.mix_comparison import compare_mixes_at_equal_latency


def main() -> None:
    target = float(sys.argv[1]) if len(sys.argv) > 1 else 30.0
    rows = compare_mixes_at_equal_latency(
        target_latency=target, message_rate=0.5, horizon=6000.0, seed=3
    )
    print(f"one Poisson(0.5) stream, every design tuned to ~{target:g} "
          "mean latency\n")
    print(f"{'design':>20} {'latency':>9} {'temporal MSE':>13} "
          f"{'set entropy':>12} {'linkage entropy':>16}")
    for row in rows:
        linkage = (
            f"{row.linkage_entropy:.2f}" if row.linkage_entropy is not None else "-"
        )
        print(f"{row.design:>20} {row.mean_latency:>9.1f} "
              f"{row.temporal_mse:>13.0f} {row.set_entropy:>12.2f} "
              f"{linkage:>16}")
    print(
        "\nReading: batching mixes earn their anonymity as *set* entropy "
        "(ln of the batch size) but their flush instants are highly "
        "structured in time.  The stop-and-go mix -- the paper's per-node "
        "mechanism -- has no batches at all, yet matches the batching "
        "designs on temporal MSE and posts a comparable per-message "
        "*linkage* entropy.  Its latency budget is spent entirely on "
        "timing uncertainty, which is the currency temporal privacy is "
        "priced in -- and unlike pool mixes, it composes across a "
        "network of queues (Burke's theorem), which is exactly why the "
        "paper can run it at every hop."
    )


if __name__ == "__main__":
    main()
