#!/usr/bin/env python3
"""Habitat monitoring: hiding *when* the animal walked by.

The paper's motivating scenario (Section 2): a sensor network monitors
an animal habitat; packets report sightings to the sink.  A hunter who
can eavesdrop near the sink cannot read the encrypted payloads, but if
he can infer each packet's creation time he knows when the animal was
at the reporting sensor -- and, as it moves, where it is heading.

This example builds a random geometric deployment, drives it with
bursty on/off traffic (bursts = animal near the sensor), and compares
the hunter's timing picture with and without RCAD:

* per-packet creation-time MSE (the paper's metric), and
* the empirical mutual information between true creation times and
  the hunter's estimates -- the Section 3 leakage, measured end-to-end.

Usage::

    python examples/habitat_monitoring.py
"""

import numpy as np

from repro.core.adversary import BaselineAdversary, FlowKnowledge
from repro.core.metrics import summarize_flow
from repro.core.planner import UniformPlanner
from repro.infotheory.estimators import ksg_mutual_information
from repro.net.routing import shortest_path_tree
from repro.net.topology import random_geometric_deployment
from repro.sim.config import BufferSpec, FlowSpec, SimulationConfig
from repro.sim.simulator import SensorNetworkSimulator
from repro.traffic.generators import OnOffTraffic

MEAN_DELAY = 30.0
CAPACITY = 10
N_PACKETS = 400


def build_network(seed: int):
    """A 60-node habitat field with 3 animal-trail sensors."""
    rng = np.random.Generator(np.random.PCG64(seed))
    deployment = random_geometric_deployment(
        n_nodes=60, area_side=10.0, radio_range=2.2, rng=rng
    )
    tree = shortest_path_tree(deployment)
    # Sources: the three nodes deepest in the field (longest paths).
    depths = {n: tree.hop_count(n) for n in deployment.node_ids if n != deployment.sink}
    sources = sorted(depths, key=depths.get, reverse=True)[:3]
    return deployment, tree, sources


def run(case: str, seed: int = 7):
    deployment, tree, sources = build_network(seed)
    # Bursty sightings: ~3 reports per burst, quiet gaps of ~200 units.
    flows = [
        FlowSpec(
            flow_id=i + 1,
            source=source,
            traffic=OnOffTraffic(burst_rate=0.5, mean_on=6.0, mean_off=200.0),
            n_packets=N_PACKETS,
        )
        for i, source in enumerate(sources)
    ]
    rates = {f.source: f.traffic.mean_rate() for f in flows}
    if case == "undefended":
        plan, buffers = None, BufferSpec(kind="infinite")
    else:
        plan = UniformPlanner(MEAN_DELAY).plan(tree, rates)
        buffers = BufferSpec(kind="rcad", capacity=CAPACITY)
    config = SimulationConfig(
        deployment=deployment, tree=tree, flows=flows,
        delay_plan=plan, buffers=buffers, seed=seed,
    )
    result = SensorNetworkSimulator(config).run()
    hunter = BaselineAdversary(FlowKnowledge(
        transmission_delay=1.0,
        mean_delay_per_hop=0.0 if case == "undefended" else MEAN_DELAY,
        buffer_capacity=None if case == "undefended" else CAPACITY,
        n_sources=len(sources),
    ))
    return result, hunter


def main() -> None:
    print("habitat monitoring: can the hunter reconstruct sighting times?\n")
    print(f"{'network':>12} {'flow':>6} {'hops':>6} {'MSE':>12} "
          f"{'RMSE':>10} {'I(X;Xhat) nats':>15}")
    for case in ("undefended", "rcad"):
        result, hunter = run(case)
        estimates = hunter.estimate_all(result.observations)
        for flow_id in result.flow_ids():
            indices = result.flow_indices(flow_id)
            flow_estimates = [estimates[i] for i in indices]
            records = [result.records[i] for i in indices]
            metrics = summarize_flow(records, flow_estimates)
            truths = np.array([r.created_at for r in records])
            leakage = ksg_mutual_information(truths, np.array(flow_estimates))
            print(
                f"{case:>12} {flow_id:>6} {records[0].hop_count:>6} "
                f"{metrics.mse:>12.1f} {metrics.rmse:>10.2f} {leakage:>15.2f}"
            )
    print(
        "\nReading: undefended, the hunter's RMSE is 0 -- every sighting "
        "is timestamped for him.  Under RCAD the RMSE jumps to tens of "
        "time units (several sensor duty cycles) despite the shorter "
        "7-8 hop paths.  Note the mutual information stays positive: "
        "arrival times always leak *something* (the Eq. (4) bound is "
        "nonzero); the defence controls how much."
    )


if __name__ == "__main__":
    main()
