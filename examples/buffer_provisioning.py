#!/usr/bin/env python3
"""Buffer provisioning with the Erlang loss formula (paper Section 4).

Temporal privacy and buffer utilization are conflicting objectives:
longer delays mean more packets parked in each node's tiny memory.  The
paper's Section 4 turns the Erlang loss formula into a design tool --
given each node's aggregate traffic rate lambda_i and its k buffer
slots, pick the delay parameter mu_i so the drop/preemption rate stays
at a target alpha.

This example walks the full design loop on the paper topology:

1. predict per-node aggregate rates with the queueing tree model,
2. plan per-node delays with the Erlang-target planner (and compare
   against the naive uniform plan),
3. simulate, and check the realized preemption rates and occupancy
   against the analytic predictions.

Usage::

    python examples/buffer_provisioning.py
"""

from repro.core.planner import ErlangTargetPlanner, UniformPlanner
from repro.net.routing import greedy_grid_tree
from repro.net.topology import paper_topology
from repro.queueing.erlang import erlang_b
from repro.queueing.tandem import QueueTreeModel
from repro.sim.config import BufferSpec, FlowSpec, SimulationConfig
from repro.sim.simulator import SensorNetworkSimulator
from repro.traffic.generators import PoissonTraffic

INTERARRIVAL = 6.0
CAPACITY = 10
TARGET_LOSS = 0.05
N_PACKETS = 600


def main() -> None:
    deployment = paper_topology()
    tree = greedy_grid_tree(deployment, width=12)
    sources = [deployment.node_for_label(s) for s in ("S1", "S2", "S3", "S4")]
    rate = 1.0 / INTERARRIVAL
    flow_rates = {s: rate for s in sources}

    model = QueueTreeModel(
        parent=dict(tree.parent), injection_rates=flow_rates,
        default_service_rate=1.0 / 30.0,
    )
    s1 = deployment.node_for_label("S1")
    path = tree.path(s1)[:-1]

    print(f"design target: drop/preemption rate alpha <= {TARGET_LOSS}\n")
    print("per-node plan along S1's path (source -> sink):")
    print(f"{'hop':>4} {'lambda_i':>10} {'uniform 1/mu':>13} "
          f"{'E(rho,k) unif':>14} {'erlang 1/mu_i':>14} {'E(rho,k) plan':>14}")
    planner = ErlangTargetPlanner(
        buffer_capacity=CAPACITY, target_loss=TARGET_LOSS, max_mean_delay=240.0
    )
    plan = planner.plan(tree, flow_rates)
    uniform = UniformPlanner(30.0).plan(tree, flow_rates)
    for hop, node in enumerate(path):
        lam = model.arrival_rate(node)
        unif_mean = uniform.distribution_for(node).mean
        plan_mean = plan.distribution_for(node).mean
        print(f"{hop:>4} {lam:>10.3f} {unif_mean:>13.1f} "
              f"{erlang_b(lam * unif_mean, CAPACITY):>14.3f} "
              f"{plan_mean:>14.1f} "
              f"{erlang_b(lam * plan_mean, CAPACITY):>14.3f}")

    print("\nsimulating both plans with RCAD buffers "
          f"(Poisson sources, 1/lambda={INTERARRIVAL:g})...")
    print(f"{'plan':>14} {'preemption rate':>16} {'mean latency S1':>16} "
          f"{'planned delay S1':>17}")
    for name, the_plan in (("uniform", uniform), ("erlang-target", plan)):
        flows = [
            FlowSpec(flow_id=i + 1, source=s,
                     traffic=PoissonTraffic(rate=rate), n_packets=N_PACKETS)
            for i, s in enumerate(sources)
        ]
        config = SimulationConfig(
            deployment=deployment, tree=tree, flows=flows, delay_plan=the_plan,
            buffers=BufferSpec(kind="rcad", capacity=CAPACITY), seed=11,
        )
        result = SensorNetworkSimulator(config).run()
        offered = sum(st.admitted for st in result.node_stats.values())
        preempt_rate = result.total_preemptions() / offered if offered else 0.0
        print(f"{name:>14} {preempt_rate:>16.3f} "
              f"{result.mean_latency(flow_id=1):>16.1f} "
              f"{the_plan.mean_path_delay(tree, s1) + 15:>17.1f}")

    print(
        "\nReading: the uniform plan overloads the near-sink trunk "
        "(Erlang loss far above alpha there), so RCAD preempts heavily "
        "and realized delays fall short of the plan.  The Erlang-target "
        "plan shortens delays near the sink and lengthens them at the "
        "edge, holding every node near the target preemption rate -- "
        "Section 4's rule, executed end to end."
    )


if __name__ == "__main__":
    main()
