#!/usr/bin/env python3
"""A tour of the discrete-event engine: an M/M/1 queue from scratch.

Everything in this repository runs on ``repro.des``, a small
deterministic DES engine with two programming styles:

* callback scheduling (``sim.schedule_after``) -- what the WSN
  simulator uses internally, and
* generator processes (``yield Timeout(...)``) -- SimPy-style
  coroutines, shown here.

The demo builds the textbook M/M/1 queue as two cooperating processes
and checks Little's law and the closed-form mean waiting time
``W = 1 / (mu - lambda)`` against the simulation.

Usage::

    python examples/des_engine_tour.py [rho]
"""

import sys

from repro.des import Process, RngRegistry, Simulator, Timeout


def run_mm1(arrival_rate: float, service_rate: float, horizon: float, seed: int):
    """Simulate M/M/1 with generator processes; return summary stats."""
    sim = Simulator()
    rng = RngRegistry(seed)
    arrivals_rng = rng.stream("arrivals")
    service_rng = rng.stream("service")

    queue: list[float] = []          # arrival times of waiting customers
    server_busy = [False]
    sojourns: list[float] = []
    # Track E[N] by integrating the sample path.
    tracker = {"last": 0.0, "integral": 0.0}

    def in_system() -> int:
        return len(queue) + (1 if server_busy[0] else 0)

    def update_integral():
        now = sim.now
        tracker["integral"] += in_system() * (now - tracker["last"])
        tracker["last"] = now

    def server():
        while True:
            if not queue:
                return  # server process re-spawned on next arrival
            update_integral()
            arrived_at = queue.pop(0)
            server_busy[0] = True
            yield Timeout(float(service_rng.exponential(1.0 / service_rate)))
            update_integral()
            server_busy[0] = False
            sojourns.append(sim.now - arrived_at)

    def arrivals():
        while sim.now < horizon:
            yield Timeout(float(arrivals_rng.exponential(1.0 / arrival_rate)))
            if sim.now >= horizon:
                return
            update_integral()
            queue.append(sim.now)
            if not server_busy[0]:
                Process(sim, server())

    Process(sim, arrivals())
    sim.run()
    update_integral()
    elapsed = tracker["last"]
    return {
        "completed": len(sojourns),
        "mean_sojourn": sum(sojourns) / len(sojourns) if sojourns else 0.0,
        "mean_in_system": tracker["integral"] / elapsed if elapsed else 0.0,
    }


def main() -> None:
    rho = float(sys.argv[1]) if len(sys.argv) > 1 else 0.7
    arrival_rate, service_rate = rho, 1.0
    stats = run_mm1(arrival_rate, service_rate, horizon=200_000.0, seed=13)
    w_theory = 1.0 / (service_rate - arrival_rate)
    n_theory = rho / (1.0 - rho)
    print(f"M/M/1 at rho = {rho:g} ({stats['completed']} customers served)\n")
    print(f"{'quantity':>22} {'simulated':>11} {'theory':>9}")
    print(f"{'mean sojourn W':>22} {stats['mean_sojourn']:>11.3f} "
          f"{w_theory:>9.3f}")
    print(f"{'mean in system N':>22} {stats['mean_in_system']:>11.3f} "
          f"{n_theory:>9.3f}")
    little = stats['mean_in_system'] / max(stats['mean_sojourn'], 1e-12)
    print(f"{'Little ratio N/W':>22} {little:>11.3f} {arrival_rate:>9.3f}")
    print(
        "\nReading: the same engine, RNG streams and determinism "
        "guarantees that drive the paper's evaluation also reproduce "
        "the M/M/1 closed forms -- the smallest end-to-end check that "
        "the substrate is trustworthy."
    )


if __name__ == "__main__":
    main()
