#!/usr/bin/env python3
"""Packet forensics: watching RCAD act on individual packets.

The aggregate results (Figures 2-3) say *that* RCAD works; this
example shows *how*, using the simulator's per-packet lifecycle
tracing.  It runs a short, heavily loaded RCAD simulation, picks the
packet that was preempted the most, and prints its full life: every
buffering stop, the delay it was promised, and where preemption cut
that delay short.

Usage::

    python examples/packet_forensics.py
"""

from repro.core.victim import ShortestRemainingDelay
from repro.sim.config import SimulationConfig
from repro.sim.simulator import SensorNetworkSimulator


def main() -> None:
    config = SimulationConfig.paper_baseline(
        interarrival=2.0, case="rcad", n_packets=120,
        victim_policy=ShortestRemainingDelay(), seed=21,
    )
    config.record_packet_traces = True
    result = SensorNetworkSimulator(config).run()

    most_preempted = max(
        result.packet_traces.values(), key=lambda trace: trace.preemption_count
    )
    print(
        f"{result.delivered_count()} packets delivered, "
        f"{result.total_preemptions()} preemptions network-wide.\n"
    )
    print(f"most-preempted packet ({most_preempted.preemption_count} preemptions):\n")
    print(most_preempted.render())

    print("\nper-node realized buffering delays of this packet:")
    advertised = 30.0
    for node, delay in most_preempted.buffering_delays():
        marker = "  <- cut short" if delay < 0.2 * advertised else ""
        print(f"  node {node:>4}: {delay:7.2f} (advertised mean {advertised:g})"
              f"{marker}")
    print(
        "\nReading: every 'preempted' line is a moment the node's buffer "
        "filled and this packet -- holding the shortest remaining delay "
        "-- was pushed out early.  Those truncated delays are exactly "
        "what the baseline adversary's model misses, and the sum of the "
        "gaps is the bias behind Figure 2(a)'s privacy boost."
    )


if __name__ == "__main__":
    main()
