#!/usr/bin/env python3
"""Asset tracking: how temporal privacy protects a moving target.

The paper's opening scenario, end to end: an animal crosses the
Figure 1 sensor field; every sensor it passes reports the sighting to
the sink.  The hunter at the sink reads each report's origin (sensor
position -- cleartext header) and estimates its creation time, then
interpolates a track.  Because the animal *moves*, every time unit of
creation-time ambiguity becomes distance on the ground.

Usage::

    python examples/asset_tracking_demo.py [speed]
"""

import sys

from repro.experiments.asset_tracking import (
    ZIGZAG_WAYPOINTS,
    asset_tracking_experiment,
)
from repro.tracking.trajectory import waypoint_trajectory


def main() -> None:
    speed = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    trajectory = waypoint_trajectory(ZIGZAG_WAYPOINTS, speed=speed, start_time=50.0)
    print(
        f"asset path: {len(ZIGZAG_WAYPOINTS)} waypoints, "
        f"{trajectory.total_length():.1f} units long, speed {speed:g} -> "
        f"{trajectory.end_time - trajectory.start_time:.0f} time units\n"
    )
    rows = asset_tracking_experiment(speeds=(speed,), seed=7)
    print(f"{'network':>10} {'time RMSE':>10} {'mean localization error':>24}")
    for row in rows:
        print(f"{row.case:>10} {row.time_rmse:>10.1f} "
              f"{row.localization_error:>24.2f}")
    undefended, defended = rows[0], rows[1]
    factor = defended.localization_error / max(undefended.localization_error, 1e-9)
    print(
        f"\nReading: RCAD multiplies the hunter's tracking error by "
        f"~{factor:.1f}x at this speed.  The undefended error is just the "
        "detection-radius quantization; the defended error is the "
        "creation-time RMSE converted to ground distance by the asset's "
        "motion -- the temporal-to-spatial ambiguity conversion the "
        "paper's introduction promises."
    )


if __name__ == "__main__":
    main()
