#!/usr/bin/env python3
"""Adversary escalation: naive -> baseline -> adaptive -> path-aware.

One RCAD-defended network, four adversaries of increasing capability,
all scoring the same observation stream:

1. **naive** (Section 2.1): subtracts transmission time only;
2. **baseline** (Section 5.1): also subtracts the advertised mean
   delay h/mu;
3. **adaptive** (Section 5.4): watches the sink's aggregate rate and
   switches to the saturation estimate n k / lambda_tot when the
   Erlang loss formula says preemption dominates;
4. **path-aware** (extension): additionally knows the per-node
   aggregate rates along each flow's path and models each hop's
   saturation separately;
5. **model-based** (extension): replaces the threshold switching with
   the exact closed form (1 - E(rho_v, k))/mu per hop -- the strongest
   timing adversary in the library, nearly unbiased at every load.

The table shows how much privacy survives each escalation step.

Usage::

    python examples/adversary_escalation.py [interarrival]
"""

import sys

from repro.core.adversary import ModelBasedAdversary, PathAwareAdaptiveAdversary
from repro.experiments.common import (
    PAPER_MEAN_DELAY,
    build_adversary,
    paper_flow_knowledge,
    run_paper_case,
    score_flow,
)
from repro.net.routing import greedy_grid_tree
from repro.net.topology import paper_topology
from repro.queueing.tandem import QueueTreeModel


def _path_rates(interarrival: float) -> dict[int, list[float]]:
    """Per-node aggregate rates along every flow's path."""
    deployment = paper_topology()
    tree = greedy_grid_tree(deployment, width=12)
    sources = [deployment.node_for_label(s) for s in ("S1", "S2", "S3", "S4")]
    model = QueueTreeModel(
        parent=dict(tree.parent),
        injection_rates={s: 1.0 / interarrival for s in sources},
        default_service_rate=1.0 / PAPER_MEAN_DELAY,
    )
    return {
        source: [model.arrival_rate(node) for node in tree.path(source)[:-1]]
        for source in sources
    }


def main() -> None:
    interarrival = float(sys.argv[1]) if len(sys.argv) > 1 else 2.0
    print(f"RCAD network at 1/lambda = {interarrival:g}; flow S1 scored\n")
    result = run_paper_case(interarrival=interarrival, case="rcad",
                            n_packets=500, seed=5)
    rates = _path_rates(interarrival)
    knowledge = paper_flow_knowledge("rcad")
    adversaries = {
        "naive": build_adversary("naive", "rcad"),
        "baseline": build_adversary("baseline", "rcad"),
        "adaptive": build_adversary("adaptive", "rcad"),
        "path-aware": PathAwareAdaptiveAdversary(knowledge, path_rates=rates),
        "model-based": ModelBasedAdversary(knowledge, path_rates=rates),
    }
    print(f"{'adversary':>12} {'MSE':>14} {'RMSE':>10} {'mean error':>12}")
    for name, adversary in adversaries.items():
        metrics = score_flow(result, adversary, flow_id=1)
        print(f"{name:>12} {metrics.mse:>14.1f} {metrics.rmse:>10.2f} "
              f"{metrics.mean_error:>12.2f}")
    print(
        "\nReading: each escalation step buys the adversary accuracy, "
        "but even the model-based adversary (full deployment knowledge "
        "plus the exact closed-form delay model, mean error near zero) "
        "retains a substantial RMSE -- the residual privacy RCAD's "
        "*randomness* provides, as opposed to the modelling error the "
        "weaker adversaries suffer."
    )


if __name__ == "__main__":
    main()
