#!/usr/bin/env python
"""CI smoke test for the streaming service (``repro serve``).

Drives the real CLI in a subprocess and checks the operational
contract a process manager relies on:

1. the service starts, binds its metrics port, and ``/healthz`` and
   ``/readyz`` both answer 200;
2. ``/metrics`` serves Prometheus text exposition with live service
   counters;
3. SIGINT starts a clean drain: ``/readyz`` flips to 503 (stop routing)
   while ``/healthz`` stays 200 (still alive), buffered events release
   at their scheduled times, and the process exits 0 having released
   every admitted event.

Exit code 0 on success; any failure prints a diagnostic and exits 1.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def get(port: int, path: str) -> tuple[int, str]:
    url = f"http://127.0.0.1:{port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode()


def main() -> None:
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--events", "100000", "--rate", "300", "--mean-delay", "0.4",
            "--shards", "4", "--capacity", "256", "--max-buffered", "2048",
            "--port", "0", "--seed", "3",
        ],
        cwd=REPO,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        # -- 1: startup banner gives us the bound port -----------------
        port = None
        deadline = time.monotonic() + 30
        startup = []
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                fail("service exited during startup:\n" + "".join(startup))
            startup.append(line)
            match = re.search(r"http://127\.0\.0\.1:(\d+)/metrics", line)
            if match:
                port = int(match.group(1))
            if "service up" in line:
                break
        if port is None:
            fail("no metrics endpoint announced:\n" + "".join(startup))

        status, _ = get(port, "/healthz")
        if status != 200:
            fail(f"/healthz returned {status} on a live service")
        status, _ = get(port, "/readyz")
        if status != 200:
            fail(f"/readyz returned {status} on an accepting service")
        print(f"ok: service up on port {port}, probes green")

        # -- 2: metrics exposition -------------------------------------
        time.sleep(1.0)  # let some events flow
        status, body = get(port, "/metrics")
        if status != 200:
            fail(f"/metrics returned {status}")
        for needle in (
            "repro_service_submitted_total",
            "repro_service_released_total",
            "repro_service_tier",
            'repro_service_added_delay_bucket{le="+Inf"}',
        ):
            if needle not in body:
                fail(f"/metrics is missing {needle!r}:\n{body[:2000]}")
        submitted = int(
            re.search(r"repro_service_submitted_total (\d+)", body).group(1)
        )
        if submitted <= 0:
            fail("no events submitted after 1s of load")
        print(f"ok: /metrics scrape valid ({submitted} events submitted)")

        # -- 3: SIGINT drains cleanly ----------------------------------
        proc.send_signal(signal.SIGINT)
        flipped = False
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            try:
                if get(port, "/readyz")[0] == 503:
                    flipped = True
                    break
            except OSError:
                break  # endpoint already closed: drain finished
            time.sleep(0.02)
        if not flipped:
            fail("/readyz never flipped to 503 during drain")
        try:
            if get(port, "/healthz")[0] != 200:
                fail("/healthz went down during drain (draining is alive)")
        except OSError:
            pass  # drain completed between the two probes: acceptable
        print("ok: /readyz flipped to 503 while draining, /healthz stayed up")

        out, _ = proc.communicate(timeout=120)
        if proc.returncode != 0:
            fail(f"service exited {proc.returncode} after drain:\n{out}")
        summary = dict(
            re.findall(r"^(\w[\w /]*?)\s*: (.+)$", out, flags=re.MULTILINE)
        )
        released = int(summary.get("released", "0 (0 early)").split()[0])
        admitted = int(summary.get("admitted", "0"))
        if admitted <= 0 or released != admitted:
            fail(f"drain lost events: admitted {admitted}, released {released}")
        print(f"ok: clean drain released all {released} admitted events")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()

    print("service smoke: all checks passed")


if __name__ == "__main__":
    main()
