#!/usr/bin/env python
"""Regenerate tests/data/golden_observables.json from the current engine.

The golden file pins the observable digest of every reference
configuration (see ``repro.sim.observables.reference_configs``).  The
determinism tests assert the current code reproduces these digests
bit-for-bit, which is how engine rewrites prove they changed nothing
visible.

Only rerun this script for a *deliberate, documented* behaviour change;
an unexpected diff here means the engine's output changed and the tests
are doing their job.

Usage:
    PYTHONPATH=src python scripts/capture_golden_observables.py [--check]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.sim.observables import observable_digest, reference_configs  # noqa: E402
from repro.sim.simulator import SensorNetworkSimulator  # noqa: E402

GOLDEN_PATH = REPO / "tests" / "data" / "golden_observables.json"


def capture() -> dict[str, str]:
    digests: dict[str, str] = {}
    for name, config in reference_configs().items():
        start = time.perf_counter()
        result = SensorNetworkSimulator(config).run()
        digests[name] = observable_digest(result)
        print(f"  {name:30s} {digests[name][:16]}…  "
              f"({time.perf_counter() - start:.2f}s, "
              f"{len(result.records)} delivered)")
    return digests


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="verify against the committed golden file instead of rewriting it",
    )
    args = parser.parse_args()

    digests = capture()
    if args.check:
        committed = json.loads(GOLDEN_PATH.read_text())["digests"]
        bad = {k for k in committed if committed[k] != digests.get(k)}
        missing = set(digests) - set(committed)
        if bad or missing:
            for k in sorted(bad):
                print(f"MISMATCH {k}: committed {committed[k][:16]}… "
                      f"got {digests.get(k, 'absent')[:16]}…")
            for k in sorted(missing):
                print(f"NOT IN GOLDEN FILE: {k}")
            return 1
        print(f"all {len(committed)} digests match")
        return 0

    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps({"digests": digests}, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {len(digests)} digests to {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
