#!/usr/bin/env python
"""CI throughput regression gate for the DES fast path.

Re-measures the reduced "smoke" workload (paper Figure 2 RCAD cell at
a fraction of the committed packet count) under both engines and
compares the fast-path **speedup ratio** against the value committed in
``benchmarks/results/BENCH_des_throughput.json``.

The ratio -- not absolute packets/sec -- is what transfers across CI
machines of different raw speed: both engines run on the same host in
the same process, so their quotient cancels the machine out.  The gate
fails when the measured speedup falls below 20% of the committed one
(or below an absolute floor of 3x, whichever is stricter to pass),
which catches someone accidentally re-serializing the hot path while
tolerating ordinary CI noise.

Exit codes: 0 pass, 1 regression, 2 harness/benchmark-file problem.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.throughput import benchmark_workloads, compare  # noqa: E402

BENCH_PATH = (
    Path(__file__).resolve().parents[1]
    / "benchmarks" / "results" / "BENCH_des_throughput.json"
)
TOLERANCE = 0.20  # fail below (1 - TOLERANCE) * committed speedup
ABSOLUTE_FLOOR = 3.0  # never accept less than this, tolerance aside


def main() -> int:
    if not BENCH_PATH.exists():
        print(f"FAIL: missing committed benchmark {BENCH_PATH}")
        return 2
    committed = json.loads(BENCH_PATH.read_text())
    smoke = committed.get("smoke")
    if not smoke:
        print("FAIL: committed benchmark has no 'smoke' entry; re-run "
              "scripts/bench_des_throughput.py")
        return 2

    config = benchmark_workloads(scale=float(smoke["scale"]))["paper-fig2-rcad-ia2"]
    entry = compare(config, repeats=3)
    measured = entry["speedup"]
    floor = max(ABSOLUTE_FLOOR, (1.0 - TOLERANCE) * float(smoke["speedup"]))
    print(
        f"fast path speedup: measured {measured:.1f}x, committed "
        f"{smoke['speedup']:.1f}x, floor {floor:.1f}x "
        f"(event {entry['before']['packets_per_sec']:.0f} pkt/s, "
        f"fast {entry['after']['packets_per_sec']:.0f} pkt/s)"
    )
    if measured < floor:
        print("FAIL: DES fast-path throughput regressed")
        return 1
    print("PASS: DES throughput gate")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
