#!/usr/bin/env python
"""CI smoke test for the distributed sweep fabric.

Starts a ``repro sweep-fabric`` coordinator (2 forked workers) on a
small Figure 2 grid, SIGKILLs one worker mid-run, and asserts:

* the run still completes with exit code 0 and zero failed cells (the
  killed worker's lease lapses and its cell is stolen and rerun);
* the exported tables are byte-identical to a serial ``repro fig2`` run
  against a *different* cache directory -- so the equality proves real
  recomputation, not cache aliasing.

If the run finishes before the kill lands (a very fast machine), the
check degrades to "fabric output is serial-identical", which is still
the acceptance property.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

N_CELLS = 9  # 3 cases x 3 interarrivals
SWEEP = ["--packets", "300", "--interarrivals", "2,3,4", "--seed", "0"]
ENV = {**os.environ, "PYTHONPATH": "src"}


def results_cells(fabric_dir: Path) -> int:
    total = 0
    results_dir = fabric_dir / "results"
    if results_dir.is_dir():
        for path in results_dir.glob("*.jsonl"):
            total += sum(
                1
                for line in path.read_text(errors="replace").splitlines()
                if '"cell"' in line
            )
    return total


def live_worker_pids(fabric_dir: Path) -> list[int]:
    pids = []
    worker_dir = fabric_dir / "workers"
    if worker_dir.is_dir():
        for path in worker_dir.glob("*.json"):
            if path.stem == "coordinator":
                continue
            try:
                payload = json.loads(path.read_text())
            except Exception:
                continue
            if not payload.get("left") and payload.get("pid"):
                pids.append(int(payload["pid"]))
    return sorted(pids)


def main() -> int:
    work = Path(tempfile.mkdtemp(prefix="repro-fabric-smoke-"))
    fabric_dir = work / "fabric"
    fabric_cache = work / "cache-fabric"
    serial_cache = work / "cache-serial"
    fabric_json = work / "fabric.json"
    serial_json = work / "serial.json"

    coordinator = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "sweep-fabric", *SWEEP,
            "--workers", "2", "--lease-ttl", "3", "--heartbeat-interval", "0.5",
            "--fabric-dir", str(fabric_dir), "--cache-dir", str(fabric_cache),
            "--json", str(fabric_json),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=ENV,
    )

    # Wait until the workers are up and at least one cell has landed,
    # then SIGKILL one worker -- ideally mid-cell.
    killed = None
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline and coordinator.poll() is None:
        pids = live_worker_pids(fabric_dir)
        if len(pids) >= 2 and results_cells(fabric_dir) >= 1:
            killed = pids[0]
            try:
                os.kill(killed, signal.SIGKILL)
            except ProcessLookupError:
                killed = None  # it exited first; the run is nearly done
            break
        time.sleep(0.1)
    out, err = coordinator.communicate(timeout=500)
    print(f"coordinator: exit={coordinator.returncode} killed_pid={killed}")
    print(out)
    assert coordinator.returncode == 0, (
        f"coordinator failed ({coordinator.returncode}):\n{out}\n{err}"
    )
    assert f"fabric: {N_CELLS} cells" in out, f"wrong cell count:\n{out}"
    assert "FAILED" not in out, f"cells failed:\n{out}"
    completed = results_cells(fabric_dir)
    assert completed >= N_CELLS, (
        f"journals hold {completed} of {N_CELLS} cells"
    )

    serial = subprocess.run(
        [
            sys.executable, "-m", "repro", "fig2", *SWEEP,
            "--cache-dir", str(serial_cache), "--json", str(serial_json),
        ],
        capture_output=True,
        text=True,
        env=ENV,
        timeout=600,
    )
    assert serial.returncode == 0, (
        f"serial reference failed ({serial.returncode}):\n"
        f"{serial.stdout}\n{serial.stderr}"
    )

    for suffix in ("", ".latency.json"):
        fabric_bytes = Path(str(fabric_json) + suffix).read_bytes()
        serial_bytes = Path(str(serial_json) + suffix).read_bytes()
        assert fabric_bytes == serial_bytes, (
            f"fabric output differs from serial in *{suffix or '.json'}"
        )
    if killed is None:
        print("fabric smoke: OK (run finished before the kill; "
              "serial-identical output verified)")
    else:
        print("fabric smoke: OK (worker SIGKILLed mid-run, zero lost "
              "cells, serial-identical output)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
