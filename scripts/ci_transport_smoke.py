#!/usr/bin/env python
"""CI smoke test for the fabric's TCP transport + chaos proxy.

Runs a ``repro sweep-fabric`` coordinator serving the grid over TCP
(``--listen``, zero forked workers), then joins two networked workers:

* one in-process worker whose connection is routed through the
  :class:`repro.runtime.chaosnet.ChaosProxy` with frame drops,
  duplicate delivery, and one full mid-run partition;
* one ``repro worker --connect`` subprocess that is SIGKILLed after it
  lands at least one cell (its leases expire on the coordinator's
  clock and the surviving worker steals the rest).

Asserts that the run completes with zero failed cells, that the chaos
plan actually fired (frames dropped/duplicated, partition enforced),
and that the exported tables are byte-identical to a serial ``repro
fig2`` run against a *different* cache directory -- equality therefore
proves real recomputation over a faulty network, not cache aliasing.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.runtime.chaosnet import ChaosProxy, NetFaultPlan, PartitionWindow
from repro.runtime.fabric import FabricWorker
from repro.runtime.transport import Backoff, TransportClient

N_CELLS = 9  # 3 cases x 3 interarrivals
SWEEP = ["--packets", "300", "--interarrivals", "2,3,4", "--seed", "0"]
ENV = {**os.environ, "PYTHONPATH": "src"}
LEASE_TTL = 15.0


def free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def wait_for_listener(port: int, process: subprocess.Popen, timeout: float) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            out, err = process.communicate()
            raise AssertionError(
                f"coordinator exited early ({process.returncode}):\n{out}\n{err}"
            )
        try:
            socket.create_connection(("127.0.0.1", port), timeout=0.2).close()
            return
        except OSError:
            time.sleep(0.1)
    raise AssertionError(f"coordinator never listened on port {port}")


def cells_in(journal: Path) -> int:
    if not journal.is_file():
        return 0
    return sum(
        1
        for line in journal.read_text(errors="replace").splitlines()
        if '"cell"' in line
    )


def main() -> int:
    work = Path(tempfile.mkdtemp(prefix="repro-transport-smoke-"))
    fabric_dir = work / "fabric"
    fabric_cache = work / "cache-fabric"
    serial_cache = work / "cache-serial"
    fabric_json = work / "fabric.json"
    serial_json = work / "serial.json"
    port = free_port()

    coordinator = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "sweep-fabric", *SWEEP,
            "--workers", "0", "--listen", f"127.0.0.1:{port}",
            "--lease-ttl", str(LEASE_TTL), "--heartbeat-interval", "2",
            "--fabric-dir", str(fabric_dir), "--cache-dir", str(fabric_cache),
            "--json", str(fabric_json),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=ENV,
    )
    wait_for_listener(port, coordinator, timeout=120)

    # The chaos path: drops, duplicate delivery, and one 2-second full
    # partition starting mid-run, all frame-aligned and deterministic.
    proxy = ChaosProxy(
        "127.0.0.1",
        port,
        NetFaultPlan(
            drop_probability=0.05,
            duplicate_probability=0.05,
            partitions=(PartitionWindow(start=8.0, duration=2.0),),
            seed=7,
        ),
    )
    chaos_port = proxy.start()

    # Worker 1: in-process, through the chaos proxy.  A short call
    # timeout turns every dropped frame into a quick retransmission.
    # The fabric directory is mounted as the fallback rung: if the
    # partition happens to swallow the final "complete" acquire, the
    # worker degrades to the shared directory instead of erroring.
    client = TransportClient(
        ("127.0.0.1", chaos_port),
        "chaos-worker",
        call_timeout=2.0,
        max_retry_elapsed=30.0,
        backoff=Backoff(base=0.05, cap=0.5),
    )
    chaos_worker = FabricWorker(fabric_dir, transport_client=client)
    chaos_result: dict = {}

    def run_chaos_worker() -> None:
        try:
            chaos_result["computed"] = chaos_worker.run()
        except Exception as exc:  # surfaced after the join below
            chaos_result["error"] = exc

    chaos_thread = threading.Thread(target=run_chaos_worker, daemon=True)
    chaos_thread.start()

    # Worker 2: a plain subprocess, direct to the coordinator; SIGKILLed
    # once it has journaled at least one cell.
    victim = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--connect", f"127.0.0.1:{port}",
            "--worker-id", "victim", "--cache-dir", str(work / "cache-victim"),
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=ENV,
    )
    victim_journal = fabric_dir / "results" / "victim.jsonl"
    killed = False
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline and coordinator.poll() is None:
        if victim.poll() is not None:
            break  # finished everything before the kill landed
        if cells_in(victim_journal) >= 1:
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30)
            killed = True
            break
        time.sleep(0.1)

    out, err = coordinator.communicate(timeout=500)
    chaos_thread.join(timeout=120)
    proxy.stop()
    print(f"coordinator: exit={coordinator.returncode} victim_killed={killed}")
    print(out)
    print(
        f"chaos worker: computed={chaos_result.get('computed')} "
        f"stats={client.stats.to_json()}"
    )
    print(f"proxy: {proxy.stats}")

    if "error" in chaos_result:
        raise AssertionError(f"chaos worker crashed: {chaos_result['error']!r}")
    assert coordinator.returncode == 0, (
        f"coordinator failed ({coordinator.returncode}):\n{out}\n{err}"
    )
    assert f"fabric: {N_CELLS} cells" in out, f"wrong cell count:\n{out}"
    assert "FAILED" not in out, f"cells failed:\n{out}"
    assert "endpoint 127.0.0.1" in out, f"no transport trailer:\n{out}"

    # The chaos plan must actually have fired.
    assert proxy.stats.partitions_enforced == 1, proxy.stats
    assert proxy.stats.frames_dropped + proxy.stats.frames_duplicated > 0, (
        proxy.stats
    )
    assert client.stats.retransmitted_frames + client.stats.reconnects > 0, (
        client.stats.to_json()
    )

    serial = subprocess.run(
        [
            sys.executable, "-m", "repro", "fig2", *SWEEP,
            "--cache-dir", str(serial_cache), "--json", str(serial_json),
        ],
        capture_output=True,
        text=True,
        env=ENV,
        timeout=600,
    )
    assert serial.returncode == 0, (
        f"serial reference failed ({serial.returncode}):\n"
        f"{serial.stdout}\n{serial.stderr}"
    )
    for suffix in ("", ".latency.json"):
        fabric_bytes = Path(str(fabric_json) + suffix).read_bytes()
        serial_bytes = Path(str(serial_json) + suffix).read_bytes()
        assert fabric_bytes == serial_bytes, (
            f"fabric output differs from serial in *{suffix or '.json'}"
        )

    kill_note = (
        "victim SIGKILLed mid-run, leases stolen"
        if killed
        else "victim finished before the kill landed"
    )
    print(
        f"transport smoke: OK (drops + duplicates + partition survived, "
        f"{kill_note}, serial-identical output)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
