#!/usr/bin/env python
"""CI smoke test for checkpoint/resume: SIGINT a sweep, resume it.

Runs a small ``repro fig2`` sweep with ``--jobs 2`` against a throwaway
cache directory, sends SIGINT once the checkpoint journal shows
progress, then re-runs with ``--resume`` and asserts:

* the interrupted run exits with the conventional SIGINT code (130);
* the resumed run succeeds and reports journal hits for every cell the
  first run completed;
* no already-journaled cell is recomputed (journal ``resumed`` count +
  ``recorded`` count covers the whole sweep, and the cache reports no
  redundant stores for resumed cells).

If the first run finishes before the signal lands (a very fast
machine), the check degrades to "resume recomputes zero cells", which
is still the property we care about.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

N_CELLS = 9  # 3 cases x 3 interarrivals
ARGS = [
    "fig2",
    "--packets", "300",
    "--interarrivals", "2,3,4",
    "--jobs", "2",
]


def run_repro(cache_dir: str, extra: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *ARGS, "--cache-dir", cache_dir, *extra],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
        timeout=600,
    )


def journal_cells(cache_dir: str) -> int:
    total = 0
    journal_dir = Path(cache_dir) / "journal"
    if journal_dir.is_dir():
        for path in journal_dir.glob("*.jsonl"):
            total += sum(
                1 for line in path.read_text().splitlines() if '"cell"' in line
            )
    return total


def main() -> int:
    cache_dir = tempfile.mkdtemp(prefix="repro-resume-smoke-")

    process = subprocess.Popen(
        [sys.executable, "-m", "repro", *ARGS, "--cache-dir", cache_dir],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    # Wait until at least one cell is journaled, then interrupt.
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline:
        if journal_cells(cache_dir) >= 1 or process.poll() is not None:
            break
        time.sleep(0.2)
    interrupted = process.poll() is None
    if interrupted:
        process.send_signal(signal.SIGINT)
    out, err = process.communicate(timeout=120)
    completed_cells = journal_cells(cache_dir)
    print(f"first run: exit={process.returncode} journaled={completed_cells} "
          f"interrupted={interrupted}")
    if interrupted:
        assert process.returncode == 130, (
            f"expected SIGINT exit code 130, got {process.returncode}\n{out}\n{err}"
        )
        assert "--resume" in err, f"missing resume hint on stderr:\n{err}"
    assert 1 <= completed_cells <= N_CELLS, f"journaled {completed_cells} cells"

    resumed_run = run_repro(cache_dir, ["--resume"])
    print(resumed_run.stdout)
    assert resumed_run.returncode == 0, (
        f"resume run failed ({resumed_run.returncode}):\n"
        f"{resumed_run.stdout}\n{resumed_run.stderr}"
    )
    match = re.search(
        r"journal: (\d+) resumed, (\d+) recorded", resumed_run.stdout
    )
    assert match, f"no journal stats line:\n{resumed_run.stdout}"
    resumed, recorded = int(match.group(1)), int(match.group(2))
    assert resumed == completed_cells, (
        f"resumed {resumed} cells, expected {completed_cells}"
    )
    assert resumed + recorded == N_CELLS, (
        f"resume covered {resumed}+{recorded} of {N_CELLS} cells"
    )
    # Cell-level accounting: resumed cells are served from the journal,
    # so the cache sees only the cells the first run never finished.
    cache_line = re.search(r"cache: (\d+) hits, (\d+) misses", resumed_run.stdout)
    assert cache_line, f"no cache stats line:\n{resumed_run.stdout}"
    hits, misses = int(cache_line.group(1)), int(cache_line.group(2))
    assert hits + misses <= N_CELLS - resumed, (
        f"resumed cells touched the cache: {hits} hits + {misses} misses "
        f"with {resumed} resumed"
    )

    # Third run, fully journaled: zero recomputation end to end.
    final_run = run_repro(cache_dir, ["--resume"])
    assert final_run.returncode == 0
    assert f"journal: {N_CELLS} resumed, 0 recorded" in final_run.stdout, (
        f"full resume missing:\n{final_run.stdout}"
    )
    print("resume smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
