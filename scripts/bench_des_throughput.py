#!/usr/bin/env python
"""Measure DES throughput before/after the hot-path overhaul.

Sweeps the benchmark workload matrix (paper 4-flow Figure 2 cell,
~10^2-node grid, ~10^3-node grid), timing each under the event-driven
engine (``REPRO_FASTPATH=0``) and the vectorized fast path, and writes
``benchmarks/results/BENCH_des_throughput.json``.

Usage:
    PYTHONPATH=src python scripts/bench_des_throughput.py [--repeats N]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.throughput import benchmark_workloads, compare  # noqa: E402

OUT = Path(__file__).resolve().parents[1] / "benchmarks" / "results"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing repeats (default 3)")
    parser.add_argument("--smoke-scale", type=float, default=0.3,
                        help="packet-count scale for the CI smoke entry")
    args = parser.parse_args()

    report: dict = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": {},
    }
    for name, config in benchmark_workloads().items():
        print(f"[{name}] timing ...", flush=True)
        entry = compare(config, repeats=args.repeats)
        report["workloads"][name] = entry
        before, after = entry["before"], entry["after"]
        print(
            f"[{name}] nodes={entry['nodes']} events={before['events']}: "
            f"{before['packets_per_sec']:.0f} -> {after['packets_per_sec']:.0f} "
            f"packets/sec ({entry['speedup']:.1f}x)",
            flush=True,
        )

    # A reduced-size entry measured with the same harness the CI smoke
    # reruns, so its regression comparison is like-for-like.
    smoke_config = benchmark_workloads(scale=args.smoke_scale)["paper-fig2-rcad-ia2"]
    report["smoke"] = {
        "scale": args.smoke_scale,
        **compare(smoke_config, repeats=args.repeats),
    }
    print(f"[smoke] speedup {report['smoke']['speedup']:.1f}x", flush=True)

    OUT.mkdir(parents=True, exist_ok=True)
    out_path = OUT / "BENCH_des_throughput.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")

    fig2_speedup = report["workloads"]["paper-fig2-rcad-ia2"]["speedup"]
    if fig2_speedup < 10.0:
        print(f"WARNING: fig2 speedup {fig2_speedup:.1f}x is below the 10x target")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
