#!/usr/bin/env python
"""Profile the DES hot path on a Figure 2 cell.

Runs the paper's highest-load RCAD cell under cProfile and prints the
top-20 functions by cumulative time -- the view that motivated (and now
monitors) the hot-path overhaul.  By default both engines are profiled:
the event-driven calendar-queue engine (``REPRO_FASTPATH=0``) first,
then the vectorized fast path.

Usage:
    PYTHONPATH=src python scripts/profile_des.py [--packets N]
        [--mode event|fast|both] [--top K]
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.throughput import paper_workload  # noqa: E402
from repro.sim.simulator import SensorNetworkSimulator  # noqa: E402


def profile_mode(mode: str, n_packets: int, top: int) -> None:
    config = paper_workload(n_packets=n_packets)
    saved = os.environ.get("REPRO_FASTPATH")
    os.environ["REPRO_FASTPATH"] = "0" if mode == "event" else "1"
    try:
        profiler = cProfile.Profile()
        profiler.enable()
        result = SensorNetworkSimulator(config).run()
        profiler.disable()
    finally:
        if saved is None:
            del os.environ["REPRO_FASTPATH"]
        else:
            os.environ["REPRO_FASTPATH"] = saved
    print(f"\n=== {mode} engine: {result.events_processed} events, "
          f"{len(result.records)} deliveries ===")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--packets", type=int, default=1000,
                        help="packets per flow (default 1000, the paper's)")
    parser.add_argument("--mode", choices=["event", "fast", "both"],
                        default="both")
    parser.add_argument("--top", type=int, default=20,
                        help="rows of the cumulative-time table (default 20)")
    args = parser.parse_args()
    modes = ["event", "fast"] if args.mode == "both" else [args.mode]
    for mode in modes:
        profile_mode(mode, args.packets, args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
