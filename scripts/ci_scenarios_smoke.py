#!/usr/bin/env python
"""CI smoke test for the scenario generator and defense registry.

Three checks:

1. **Spec round-trip** -- ``repro scenarios --example`` emits a suite
   that parses back to the same specs, and the parsed suite compiles to
   configurations whose stable fingerprints match the in-process
   ``example_suite()`` exactly.

2. **Serial == parallel** -- a reduced suite (all three topology
   families, four registered defenses) runs end-to-end through the CLI
   twice, serially and with ``--jobs 2``, against separate caches; the
   exported per-cell summary JSON must be byte-identical.

3. **Registry anchoring** -- the ``rcad`` registry entry rebuilt onto
   the paper deployment is fingerprint-identical to
   ``SimulationConfig.paper_baseline``, so registry runs share cache
   entries (and golden observable digests) with the figure drivers.

Exit code 0 on success; any failure prints a diagnostic and exits 1.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def repro(args: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        timeout=600,
    )


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def smoke_suite() -> dict:
    """The example suite shrunk to smoke-test size (fewer packets)."""
    from repro.scenarios import example_suite, suite_to_dict

    suite = suite_to_dict(example_suite())
    for scenario in suite["scenarios"]:
        scenario["n_packets"] = min(scenario.get("n_packets", 100), 15)
        scenario["seeds"] = [0]
    return suite


# ----------------------------------------------------------------------
def check_round_trip() -> None:
    from repro.runtime.fingerprint import stable_fingerprint
    from repro.scenarios import example_suite, parse_suite

    proc = repro(["scenarios", "--example"])
    if proc.returncode != 0:
        fail(f"scenarios --example exited {proc.returncode}:\n{proc.stderr}")
    parsed = parse_suite(json.loads(proc.stdout))
    reference = example_suite()
    if parsed != reference:
        fail("parsed --example suite differs from example_suite()")
    families = set()
    defenses = set()
    for spec, clone in zip(reference, parsed):
        families.add(spec.topology.family)
        defenses.update(d.name for d in spec.defenses)
        for a, b in zip(spec.compile(), clone.compile()):
            if stable_fingerprint(a.config) != stable_fingerprint(b.config):
                fail(f"round-trip fingerprint mismatch for {a.scenario_id}")
    if len(families) < 3:
        fail(f"example suite covers {sorted(families)}, need 3 families")
    if len(defenses) < 4:
        fail(f"example suite registers {sorted(defenses)}, need 4 defenses")
    print(
        f"ok: --example round-trips; {sorted(families)} families, "
        f"{len(defenses)} defenses"
    )


# ----------------------------------------------------------------------
def check_serial_equals_parallel() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        suite_path = tmp_path / "suite.json"
        suite_path.write_text(json.dumps(smoke_suite()))
        outputs = {}
        for label, jobs, cache in (("serial", "1", "cache-a"),
                                   ("parallel", "2", "cache-b")):
            out = tmp_path / f"{label}.json"
            proc = repro([
                "scenarios", str(suite_path),
                "--jobs", jobs,
                "--cache-dir", str(tmp_path / cache),
                "--json", str(out),
            ])
            if proc.returncode != 0:
                fail(f"{label} run exited {proc.returncode}:\n{proc.stderr}")
            outputs[label] = out.read_bytes()
        if outputs["serial"] != outputs["parallel"]:
            fail("serial and --jobs 2 summaries differ")
        summaries = json.loads(outputs["serial"])["summaries"]
        if len(summaries) != 9:
            fail(f"expected 9 matrix cells, got {len(summaries)}")
        if any(s["delivered"] == 0 for s in summaries):
            fail("a scenario cell delivered no packets")
        print(f"ok: serial == --jobs 2 over {len(summaries)} cells")


# ----------------------------------------------------------------------
def check_registry_anchoring() -> None:
    from repro.defenses import DEFENSES, DefenseContext
    from repro.runtime.fingerprint import stable_fingerprint
    from repro.sim.config import SimulationConfig

    baseline = SimulationConfig.paper_baseline(
        interarrival=2.0, case="rcad", n_packets=150
    )
    materialized = DEFENSES.create("rcad").materialize(DefenseContext(
        deployment=baseline.deployment,
        tree=baseline.tree,
        flow_rates={
            flow.source: flow.traffic.mean_rate() for flow in baseline.flows
        },
        capacity=10,
    ))
    rebuilt = SimulationConfig(
        deployment=baseline.deployment,
        tree=baseline.tree,
        flows=baseline.flows,
        delay_plan=materialized.delay_plan,
        buffers=materialized.buffers,
        routing_policy=materialized.routing_policy,
        transmission_delay=baseline.transmission_delay,
        seed=baseline.seed,
    )
    if stable_fingerprint(rebuilt) != stable_fingerprint(baseline):
        fail("registry-built rcad does not match paper_baseline fingerprint")
    print("ok: registry rcad is fingerprint-identical to paper_baseline")


def main() -> None:
    sys.path.insert(0, str(REPO / "src"))
    check_round_trip()
    check_serial_equals_parallel()
    check_registry_anchoring()
    print("scenarios smoke: all checks passed")


if __name__ == "__main__":
    main()
