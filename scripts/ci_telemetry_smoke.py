#!/usr/bin/env python
"""CI smoke test for the telemetry layer.

Two checks:

1. **Manifest contract** -- run a tiny ``repro run --telemetry``
   against a throwaway cache, then assert that the emitted manifest
   validates against the checked-in ``run_manifest.schema.json``, that
   the series file loads, and that it contains a non-empty occupancy
   series for the S1 trunk node.

2. **Telemetry-off overhead guard** -- time an uninstrumented
   simulation and normalize by a pure-Python calibration loop (so the
   measure tracks machine speed, not absolute seconds).  The normalized
   ratio must stay within the tolerance recorded in the committed
   baseline ``benchmarks/results/BENCH_telemetry_baseline.json``;
   refresh the baseline on intentional changes with ``--write-baseline``.

Exit code 0 on success; any failure prints a diagnostic and exits 1.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BASELINE = REPO / "benchmarks" / "results" / "BENCH_telemetry_baseline.json"

RUN_ARGS = [
    "run",
    "--case", "rcad",
    "--interarrival", "10",
    "--packets", "200",
    "--traffic", "poisson",
    "--seed", "0",
]


def repro(cache_dir: str, extra: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *RUN_ARGS, "--cache-dir", cache_dir, *extra],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        timeout=600,
    )


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


# ----------------------------------------------------------------------
def check_manifest_contract() -> None:
    from repro.telemetry import load_manifest, load_series, validate

    with tempfile.TemporaryDirectory() as cache_dir:
        proc = repro(cache_dir, ["--telemetry"])
        if proc.returncode != 0:
            fail(f"telemetry run exited {proc.returncode}:\n{proc.stderr}")
        telemetry_dir = Path(cache_dir) / "telemetry"
        manifests = sorted(telemetry_dir.glob("*.manifest.json"))
        if len(manifests) != 1:
            fail(f"expected exactly one manifest, found {manifests}")
        manifest = load_manifest(manifests[0])
        validate(manifest)  # raises SchemaError listing every violation
        if len(manifest["runs"]) != 1:
            fail(f"expected one run key, got {manifest['runs']}")
        if manifest["runtime"]["simulations"] != 1:
            fail(f"expected one simulation, got {manifest['runtime']}")
        series_path = manifests[0].parent / manifest["series_file"]
        series, metrics = load_series(series_path)
        run_key = manifest["runs"][0]
        trunk = series.get((run_key, "occupancy/node-103"))
        if trunk is None or len(trunk) == 0:
            available = sorted(name for key, name in series if key == run_key)
            fail(f"no occupancy series for trunk node 103; got {available}")
        if metrics[run_key]["counters"]["sim/delivered"] <= 0:
            fail("series file records no deliveries")
        print(
            f"ok: manifest validates; {len(series)} series, "
            f"{len(trunk)} occupancy samples for node 103"
        )


# ----------------------------------------------------------------------
def _spin() -> float:
    total = 0.0
    for i in range(400_000):
        total += i * 0.5
    return total


def _measure_ratio(rounds: int = 7) -> tuple[float, float, float]:
    """(ratio, sim, calibration): min-of-N, interleaved.

    Calibration and simulation runs alternate so a load spike on a
    shared CI runner hits both; taking the minimum of several rounds
    finds a quiet window for each.  The ratio tracks *code* cost, not
    machine speed.
    """
    from repro.sim.config import SimulationConfig
    from repro.sim.simulator import SensorNetworkSimulator

    config = SimulationConfig.paper_baseline(
        interarrival=10.0, case="rcad", n_packets=200, seed=0, traffic="poisson"
    )
    calibration = float("inf")
    sim = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        _spin()
        calibration = min(calibration, time.perf_counter() - start)
        start = time.perf_counter()
        SensorNetworkSimulator(config).run()
        sim = min(sim, time.perf_counter() - start)
    return sim / calibration, sim, calibration


def check_overhead_guard(write_baseline: bool) -> None:
    ratio, sim, calibration = _measure_ratio()
    if write_baseline:
        BASELINE.parent.mkdir(parents=True, exist_ok=True)
        BASELINE.write_text(json.dumps({
            "description": (
                "Telemetry-off simulation cost, normalized by a pure-Python "
                "calibration loop (scripts/ci_telemetry_smoke.py)."
            ),
            "normalized_ratio": ratio,
            "tolerance": 0.10,
        }, indent=2) + "\n")
        print(f"wrote baseline ratio {ratio:.3f} to {BASELINE}")
        return
    if not BASELINE.is_file():
        fail(f"missing baseline {BASELINE}; run with --write-baseline")
    baseline = json.loads(BASELINE.read_text())
    limit = baseline["normalized_ratio"] * (1.0 + baseline["tolerance"])
    verdict = "ok" if ratio <= limit else "FAIL"
    print(
        f"{verdict}: telemetry-off ratio {ratio:.3f} vs baseline "
        f"{baseline['normalized_ratio']:.3f} (limit {limit:.3f}; "
        f"sim {sim * 1e3:.1f} ms, calibration {calibration * 1e3:.1f} ms)"
    )
    if ratio > limit:
        fail(
            "uninstrumented simulation slowed beyond the baseline tolerance; "
            "if intentional, refresh with --write-baseline"
        )


def main() -> None:
    sys.path.insert(0, str(REPO / "src"))
    write_baseline = "--write-baseline" in sys.argv
    check_manifest_contract()
    check_overhead_guard(write_baseline)
    print("telemetry smoke: all checks passed")


if __name__ == "__main__":
    main()
