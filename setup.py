"""Legacy setup shim.

The canonical build configuration lives in ``pyproject.toml``.  This
file exists only so that fully offline environments without the
``wheel`` package (where PEP 660 editable installs cannot be built) can
still do ``python setup.py develop`` / ``pip install -e .``.
"""

from setuptools import setup

setup()
