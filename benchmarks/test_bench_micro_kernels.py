"""Micro-benchmarks of the hot kernels (auto-calibrated rounds).

These are genuine pytest-benchmark measurements (many iterations) for
the inner loops everything else is built on: the DES event loop, RCAD
buffer admissions, the Speck block cipher, the Erlang-B recursion and
the KSG mutual-information estimator -- plus vectorized-vs-scalar
pairs for the adversary scoring kernels, so the speedup of the numpy
batch paths (and their exact agreement with the scalar oracle) is
measured where the optimization lives.
"""

import numpy as np
import pytest

from repro.core.buffers import RcadBuffer
from repro.crypto.speck import Speck64_128
from repro.des import Simulator
from repro.experiments.common import build_adversary, run_paper_case
from repro.infotheory.estimators import ksg_mutual_information
from repro.queueing.erlang import erlang_b
from repro.runtime import kernels


def test_des_event_throughput(benchmark):
    """Schedule + dispatch 10k chained events."""

    def run():
        sim = Simulator()
        remaining = [10_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule_after(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events == 10_000


def test_rcad_buffer_admission_throughput(benchmark):
    """5k offers against a k=10 RCAD buffer, all but 10 preempting."""

    def run():
        buffer = RcadBuffer(capacity=10)
        for i in range(5000):
            buffer.offer(i, float(i), float(i) + 30.0)
        return buffer.preemption_count

    preemptions = benchmark(run)
    assert preemptions == 4990


def test_speck_block_throughput(benchmark):
    cipher = Speck64_128(bytes(range(16)))
    block = b"8bytes!!"

    def run():
        out = block
        for _ in range(500):
            out = cipher.encrypt_block(out)
        return out

    result = benchmark(run)
    assert len(result) == 8


def test_erlang_b_throughput(benchmark):
    def run():
        total = 0.0
        for rho in np.linspace(0.1, 50.0, 200):
            total += erlang_b(float(rho), 10)
        return total

    total = benchmark(run)
    assert 0.0 < total < 200.0


def test_ksg_estimator_throughput(benchmark):
    rng = np.random.Generator(np.random.PCG64(0))
    x = rng.standard_normal(2000)
    z = x + rng.standard_normal(2000)

    mi = benchmark(ksg_mutual_information, x, z)
    assert mi > 0.2


# ----------------------------------------------------------------------
# Vectorized vs scalar adversary scoring.  One RCAD observation stream
# is scored through the numpy batch path and the preserved scalar
# oracle; BENCH_runtime.json records both timings side by side.

@pytest.fixture(scope="module")
def rcad_observations():
    result = run_paper_case(2.0, "rcad", n_packets=500, seed=0)
    return result.observations


@pytest.mark.parametrize("kind", ["naive", "baseline", "adaptive"])
def test_adversary_estimate_all_vectorized(benchmark, rcad_observations, kind):
    adversary = build_adversary(kind, "rcad")

    def run():
        adversary.reset()
        return adversary.estimate_all(rcad_observations)

    estimates = benchmark(run)
    assert len(estimates) == len(rcad_observations)


@pytest.mark.parametrize("kind", ["naive", "baseline", "adaptive"])
def test_adversary_estimate_all_scalar(benchmark, rcad_observations, kind):
    adversary = build_adversary(kind, "rcad")

    def run():
        adversary.reset()
        return adversary.estimate_all_scalar(rcad_observations)

    estimates = benchmark(run)
    assert len(estimates) == len(rcad_observations)


def test_erlang_b_batch_vectorized(benchmark):
    loads = np.linspace(0.1, 50.0, 200)

    total = benchmark(lambda: float(kernels.erlang_b_batch(loads, 10).sum()))
    assert 0.0 < total < 200.0
