"""Extension bench: the spatio-temporal 2x2 (§1, refs [11, 14]).

Phantom routing (the authors' earlier source-location defence) and
RCAD (this paper's temporal defence), alone and combined, against a
timing adversary *and* a backtracing local eavesdropper on one S1
flow.  Expected shape: phantom alone leaves creation times exactly
recoverable; tree routing alone is backtraced in exactly h moves; each
defence multiplies the backtracer's capture ("safety") time, and the
combination defends both axes at once.
"""

from conftest import emit

from repro.experiments.spatiotemporal import (
    safety_period_sweep,
    spatiotemporal_experiment,
)


def test_spatiotemporal_2x2(benchmark):
    rows = benchmark.pedantic(
        spatiotemporal_experiment,
        kwargs=dict(walk_length=8, interarrival=4.0, n_packets=400, seed=0),
        rounds=1,
        iterations=1,
    )
    lines = ["# Spatio-temporal 2x2: routing x buffering, flow S1"]
    lines.append(f"{'routing':>8} {'buffering':>10} {'temporal MSE':>13} "
                 f"{'latency':>9} {'captured':>9} {'capture t':>10} {'moves':>6}")
    for row in rows:
        capture = f"{row.capture_time:.1f}" if row.capture_time else "-"
        lines.append(
            f"{row.routing:>8} {row.buffering:>10} {row.temporal_mse:>13.0f} "
            f"{row.mean_latency:>9.1f} {str(row.captured):>9} "
            f"{capture:>10} {row.backtrace_moves:>6}")
    emit("spatiotemporal_2x2", "\n".join(lines))

    cells = {(row.routing, row.buffering): row for row in rows}
    undefended = cells[("tree", "no-delay")]
    combined = cells[("phantom", "rcad")]
    # Temporal axis: only the RCAD cells have positive MSE.
    assert cells[("tree", "no-delay")].temporal_mse < 1e-9
    assert cells[("phantom", "no-delay")].temporal_mse < 1e-9
    assert cells[("tree", "rcad")].temporal_mse > 5e3
    assert combined.temporal_mse > 5e3
    # Spatial axis: the undefended path is backtraced in exactly h
    # moves; every defence extends the safety period.
    assert undefended.captured and undefended.backtrace_moves == 15
    for key in (("phantom", "no-delay"), ("tree", "rcad"), ("phantom", "rcad")):
        cell = cells[key]
        if cell.captured:
            assert cell.capture_time > 1.5 * undefended.capture_time, key
    # The combination is the slowest to fall (or never falls).
    if combined.captured:
        for key in (("phantom", "no-delay"), ("tree", "rcad")):
            if cells[key].captured:
                assert combined.capture_time >= cells[key].capture_time * 0.9


def test_safety_period_sweep(benchmark):
    rows = benchmark.pedantic(
        safety_period_sweep,
        kwargs=dict(
            walk_lengths=(0, 2, 4, 8, 12), n_packets=300,
            n_replications=5, base_seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    lines = ["# Safety period vs phantom walk length (no delays, flow S1)"]
    lines.append(f"{'h_walk':>7} {'capture frac':>13} "
                 f"{'mean safety period':>19} {'latency':>9}")
    for row in rows:
        safety = (
            f"{row.mean_safety_period:.0f}"
            if row.mean_safety_period is not None else "never captured"
        )
        lines.append(f"{row.walk_length:>7} {row.capture_fraction:>13.2f} "
                     f"{safety:>19} {row.mean_latency:>9.1f}")
    emit("safety_period_sweep", "\n".join(lines))

    baseline = rows[0]
    assert baseline.capture_fraction == 1.0
    assert baseline.mean_safety_period is not None
    # Longer walks never make the hunter's life easier.  Note the
    # survivor bias: once hunts start failing, the *conditional* mean
    # safety period among captured runs can dip (only the lucky fast
    # hunts finish), so the defence signal is "capture gets rarer OR
    # capture gets slower".
    for row in rows[1:]:
        assert (
            row.capture_fraction < 1.0
            or row.mean_safety_period > baseline.mean_safety_period
        ), row.walk_length
    longest = rows[-1]
    # The latency cost is linear and small: ~one time unit per step.
    assert longest.mean_latency < baseline.mean_latency + longest.walk_length + 3
