"""Extension bench: the EM distribution-reconstruction adversary.

Regenerates the distribution-level attack built from the paper's
reference [1] (Agrawal & Aggarwal EM reconstruction): the adversary
deconvolves the known delay distribution from the arrival histogram to
recover the *temporal pattern* of the phenomenon.  Expected shape: the
undefended network leaks the pattern exactly; unlimited buffering only
blurs it (deconvolution undoes known noise); RCAD corrupts it, because
preemption silently invalidates the delay model being deconvolved.
"""

from conftest import emit

from repro.experiments.distribution_adversary import (
    distribution_adversary_experiment,
)


def test_distribution_adversary(benchmark):
    rows = benchmark.pedantic(
        distribution_adversary_experiment,
        kwargs=dict(n_packets=600, seed=0),
        rounds=1,
        iterations=1,
    )
    lines = ["# EM distribution adversary (bimodal activity pattern, flow S1)"]
    lines.append(f"{'case':>12} {'TV distance':>12} {'mean-hat':>10} {'true mean':>10}")
    for row in rows:
        lines.append(f"{row.case:>12} {row.tv_distance:>12.3f} "
                     f"{row.reconstructed_mean:>10.1f} {row.true_mean:>10.1f}")
    emit("distribution_adversary", "\n".join(lines))

    by_case = {row.case: row for row in rows}
    assert by_case["no-delay"].tv_distance < 0.05
    assert (
        by_case["no-delay"].tv_distance
        < by_case["unlimited"].tv_distance
        < by_case["rcad"].tv_distance
    )
    assert by_case["rcad"].tv_distance > 0.4
    # RCAD also displaces the reconstructed pattern in time.
    assert (
        by_case["rcad"].reconstructed_mean
        < by_case["rcad"].true_mean - 50.0
    )
