"""Extension bench: asset tracking (the paper's motivating scenario).

Regenerates the §1-§2 claim as a table: mean localization error of a
deployment-aware tracking adversary against an asset crossing the
Figure 1 field, undefended vs RCAD-defended, at two asset speeds.
Temporal ambiguity (creation-time RMSE) converts to spatial ambiguity
at a rate growing with asset speed.
"""

from conftest import emit

from repro.experiments.asset_tracking import asset_tracking_experiment


def test_asset_tracking(benchmark):
    rows = benchmark.pedantic(
        asset_tracking_experiment,
        kwargs=dict(speeds=(0.02, 0.08), seed=0),
        rounds=1,
        iterations=1,
    )
    lines = ["# Asset tracking across the Figure 1 field"]
    lines.append(f"{'case':>10} {'speed':>7} {'detections':>11} "
                 f"{'time RMSE':>10} {'localization err':>17}")
    for row in rows:
        lines.append(
            f"{row.case:>10} {row.asset_speed:>7.2f} {row.n_detections:>11} "
            f"{row.time_rmse:>10.1f} {row.localization_error:>17.2f}")
    emit("asset_tracking", "\n".join(lines))

    by_key = {(row.case, row.asset_speed): row for row in rows}
    for speed in (0.02, 0.08):
        undefended = by_key[("no-delay", speed)]
        defended = by_key[("rcad", speed)]
        # Undefended: creation times leak exactly; only detection-
        # radius quantization limits the tracker.
        assert undefended.time_rmse < 1e-6
        assert undefended.localization_error < 1.0
        # Defended: hundreds of time units of ambiguity, which the
        # moving asset converts into spatial ambiguity.
        assert defended.time_rmse > 50.0
        assert defended.localization_error > 2 * undefended.localization_error
    # Faster asset, larger spatial payoff from the same time ambiguity.
    assert (
        by_key[("rcad", 0.08)].localization_error
        > by_key[("rcad", 0.02)].localization_error
    )
