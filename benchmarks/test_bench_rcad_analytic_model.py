"""Extension bench: the closed-form RCAD model vs the Figure 2(b) curve.

The paper evaluates RCAD only by simulation.  The occupancy chain of
an RCAD node is, however, exactly M/M/k/k (for residual-independent
victim choice), giving the closed-form mean per-hop delay
``(1 - E(rho, k)) / mu``.  Summed along S1's path this *predicts* the
Figure 2(b) RCAD latency curve with no simulation at all; this bench
overlays prediction and simulation across the full 1/lambda sweep.

The prediction also upgrades the adversary: the ``ModelBasedAdversary``
subtracts the predicted per-hop delay and is the strongest estimator
in the library -- its residual MSE is (nearly) the pure delay
variance, RCAD's irreducible privacy floor.
"""

from conftest import emit

from repro.core.adversary import ModelBasedAdversary
from repro.experiments.common import (
    PAPER_BUFFER_CAPACITY,
    PAPER_INTERARRIVALS,
    PAPER_MEAN_DELAY,
    build_adversary,
    paper_flow_knowledge,
    run_paper_case,
    score_flow,
)
from repro.net.routing import greedy_grid_tree
from repro.net.topology import paper_topology
from repro.queueing.rcad_model import predicted_rcad_path_latency
from repro.queueing.tandem import QueueTreeModel


def _model_based_adversary(interarrival: float) -> ModelBasedAdversary:
    deployment = paper_topology()
    tree = greedy_grid_tree(deployment, width=12)
    sources = [deployment.node_for_label(s) for s in ("S1", "S2", "S3", "S4")]
    model = QueueTreeModel(
        parent=dict(tree.parent),
        injection_rates={s: 1.0 / interarrival for s in sources},
        default_service_rate=1.0 / PAPER_MEAN_DELAY,
    )
    return ModelBasedAdversary(
        paper_flow_knowledge("rcad"),
        {s: [model.arrival_rate(n) for n in tree.path(s)[:-1]] for s in sources},
    )


def _sweep(n_packets: int, seed: int):
    deployment = paper_topology()
    tree = greedy_grid_tree(deployment, width=12)
    s1 = deployment.node_for_label("S1")
    sources = [deployment.node_for_label(s) for s in ("S1", "S2", "S3", "S4")]
    rows = []
    for interarrival in PAPER_INTERARRIVALS:
        predicted = predicted_rcad_path_latency(
            tree,
            {s: 1.0 / interarrival for s in sources},
            source=s1,
            mean_delay=PAPER_MEAN_DELAY,
            capacity=PAPER_BUFFER_CAPACITY,
        )
        result = run_paper_case(
            interarrival=interarrival, case="rcad", n_packets=n_packets, seed=seed
        )
        simulated = result.mean_latency(flow_id=1)
        baseline_mse = score_flow(
            result, build_adversary("baseline", "rcad")
        ).mse
        model_mse = score_flow(result, _model_based_adversary(interarrival)).mse
        rows.append((interarrival, predicted, simulated, baseline_mse, model_mse))
    return rows


def test_rcad_analytic_model(benchmark, full_scale):
    rows = benchmark.pedantic(
        _sweep,
        kwargs=dict(n_packets=full_scale["n_packets"], seed=full_scale["seed"]),
        rounds=1,
        iterations=1,
    )
    lines = ["# Closed-form RCAD model vs simulation (flow S1)"]
    lines.append(f"{'1/lambda':>9} {'predicted lat':>14} {'simulated lat':>14} "
                 f"{'baseline MSE':>13} {'model-adv MSE':>14}")
    for interarrival, predicted, simulated, baseline_mse, model_mse in rows:
        lines.append(f"{interarrival:>9g} {predicted:>14.1f} {simulated:>14.1f} "
                     f"{baseline_mse:>13.0f} {model_mse:>14.0f}")
    emit("rcad_analytic_model", "\n".join(lines))

    for interarrival, predicted, simulated, baseline_mse, model_mse in rows:
        # The closed form tracks simulation across the full sweep
        # (shortest-remaining victims run a few percent slow, plus the
        # periodic-source approximation; allow 20%).
        assert abs(simulated - predicted) / predicted < 0.20
        # The model-based adversary never does much worse than the
        # baseline (at light load both reduce to subtracting ~h/mu and
        # the closed form's small shortest-remaining bias can cost a
        # few percent), and it wins decisively under preemption below.
        assert model_mse <= baseline_mse * 1.15
    # In the preemption regime the gap is dramatic: the model
    # adversary strips away the bias and leaves only the variance floor.
    for row in rows[:3]:  # 1/lambda in {2, 4, 6}
        assert row[4] < 0.5 * row[3]
    heaviest = rows[0]
    assert heaviest[4] < 0.15 * heaviest[3]
    assert heaviest[4] > 1_000  # the floor itself is not zero
