"""Extension bench: §6 mix designs at equal mean latency.

Regenerates the quantitative version of the paper's related-work
positioning: threshold/timed/pool mixes versus the SG-Mix that the
paper's per-node delaying instantiates, all at (approximately) the
same mean latency on one Poisson stream.
"""

from conftest import emit

from repro.experiments.mix_comparison import compare_mixes_at_equal_latency


def test_mix_comparison(benchmark):
    rows = benchmark.pedantic(
        compare_mixes_at_equal_latency,
        kwargs=dict(target_latency=30.0, message_rate=0.5, horizon=6000.0, seed=0),
        rounds=1,
        iterations=1,
    )
    lines = ["# Mix designs at ~equal mean latency (Poisson rate 0.5, target 30)"]
    lines.append(f"{'design':>20} {'latency':>9} {'temporal MSE':>13} "
                 f"{'set H (nats)':>13} {'linkage H':>10}")
    for row in rows:
        linkage = f"{row.linkage_entropy:.2f}" if row.linkage_entropy else "-"
        lines.append(
            f"{row.design:>20} {row.mean_latency:>9.1f} "
            f"{row.temporal_mse:>13.0f} {row.set_entropy:>13.2f} {linkage:>10}")
    emit("mix_comparison", "\n".join(lines))

    by_design = {row.design.split("(")[0]: row for row in rows}
    sg = by_design["stop-and-go"]
    threshold = by_design["threshold"]
    timed = by_design["timed"]
    # All designs landed near the latency target (pool excepted).
    for row in (sg, threshold, timed):
        assert 0.5 * 30.0 < row.mean_latency < 2.0 * 30.0
    # Batching designs earn set-anonymity; SG-Mix earns none of it...
    assert threshold.set_entropy > 2.0
    assert sg.set_entropy == 0.0
    # ...but SG-Mix holds its own on *temporal* privacy at equal
    # latency and is the only design whose per-message linkage entropy
    # is meaningful (and substantial).
    assert sg.temporal_mse > 0.5 * max(threshold.temporal_mse, timed.temporal_mse)
    assert sg.linkage_entropy is not None and sg.linkage_entropy > 1.5
