"""Ablation: how the delay budget is split across the path (§3.3, §4).

Compares three planners at equal privacy intent:

* uniform -- the paper's simulation default (same 1/mu everywhere);
* sink-weighted -- §3.3's "more delay when a forwarding node is
  further from the sink";
* erlang-target -- §4's per-node mu from the Erlang loss formula at a
  target drop rate.

Reported per planner: adversary MSE (privacy), mean latency
(performance), and the worst per-node mean buffer occupancy (the
resource the non-uniform planners exist to protect).
"""

from conftest import emit

from repro.experiments.ablations import delay_allocation_ablation


def test_delay_allocation_ablation(benchmark):
    rows = benchmark.pedantic(
        delay_allocation_ablation,
        kwargs=dict(interarrival=4.0, n_packets=600, seed=0),
        rounds=1,
        iterations=1,
    )
    lines = ["# Delay allocation ablation (1/lambda=4, infinite buffers, flow S1)"]
    lines.append(f"{'planner':>15} {'MSE':>12} {'latency':>10} "
                 f"{'max node E[N]':>14} {'total E[N]':>11}")
    for row in rows:
        lines.append(
            f"{row.planner:>15} {row.mse:>12.0f} {row.mean_latency:>10.1f} "
            f"{row.max_node_mean_occupancy:>14.2f} "
            f"{row.total_mean_occupancy:>11.1f}")
    emit("ablation_delay_allocation", "\n".join(lines))

    by_name = {row.planner: row for row in rows}
    # The Erlang-target planner caps the worst buffer: its hottest node
    # holds fewer packets than uniform's hottest node.
    assert (
        by_name["erlang-target"].max_node_mean_occupancy
        < by_name["uniform"].max_node_mean_occupancy
    )
    # The variance-optimal plan respects the same buffer caps.
    assert (
        by_name["variance-optimal"].max_node_mean_occupancy
        < by_name["uniform"].max_node_mean_occupancy
    )
    # Sink-weighting also relieves the trunk relative to uniform.
    assert (
        by_name["sink-weighted"].max_node_mean_occupancy
        < by_name["uniform"].max_node_mean_occupancy * 1.05
    )
    # Privacy cost: every plan keeps a positive residual MSE.
    assert all(row.mse > 1e3 for row in rows)
