"""Serial vs parallel sweep timing on a reduced Figure 2.

Measures the same reduced Figure 2 regeneration (three loads, 150
packets per source) through the serial executor and through a
four-worker process pool, asserts the tables are identical, and leaves
both wall-clock numbers in ``results/BENCH_runtime.json`` via the
conftest timing hook.

No speedup is *asserted*: CI machines may expose a single core, where
the pool's fork overhead makes ``--jobs 4`` slower.  The point of the
record is the ratio on the machine at hand.
"""

from __future__ import annotations

from repro.experiments.fig2 import figure2
from repro.runtime import use_runtime

REDUCED_INTERARRIVALS = (2.0, 10.0, 20.0)
REDUCED_PACKETS = 150


def _tables_equal(a, b) -> bool:
    return all(
        sa.label == sb.label
        and sa.x_values == sb.x_values
        and sa.y_values == sb.y_values
        for table_a, table_b in zip(a, b)
        for sa, sb in zip(table_a.series, table_b.series)
    )


def test_fig2_reduced_serial(benchmark):
    mse, latency = benchmark.pedantic(
        figure2,
        kwargs={
            "interarrivals": REDUCED_INTERARRIVALS,
            "n_packets": REDUCED_PACKETS,
            "seed": 0,
        },
        rounds=1,
    )
    assert len(mse.series) == 3 and len(latency.series) == 3


def test_fig2_reduced_parallel_matches_serial(benchmark):
    serial = figure2(
        interarrivals=REDUCED_INTERARRIVALS, n_packets=REDUCED_PACKETS, seed=0
    )

    def run_parallel():
        with use_runtime(jobs=4):
            return figure2(
                interarrivals=REDUCED_INTERARRIVALS,
                n_packets=REDUCED_PACKETS,
                seed=0,
            )

    parallel = benchmark.pedantic(run_parallel, rounds=1)
    assert _tables_equal(serial, parallel)
