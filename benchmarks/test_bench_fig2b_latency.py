"""Figure 2(b): mean delivery latency vs traffic load, three cases.

Paper shape to reproduce (flow S1):

* NoDelay: flat at h*tau = 15, the floor;
* Delay&UnlimitedBuffers: flat at h*(tau + 1/mu) = 465, the ceiling
  ("the average of the combined delay distribution of all the nodes in
  the path");
* Delay&LimitedBuffers (RCAD): between the two, and *decreasing* as
  traffic grows -- preemptions release packets early; at 1/lambda = 2
  the paper reports a ~2.5x reduction versus case 2.
"""

from conftest import emit

from repro.experiments.common import PAPER_INTERARRIVALS
from repro.experiments.fig2 import figure2_latency


def test_fig2b_latency(benchmark, full_scale):
    table = benchmark.pedantic(
        figure2_latency,
        kwargs=dict(interarrivals=PAPER_INTERARRIVALS, **full_scale),
        rounds=1,
        iterations=1,
    )
    emit("fig2b_latency", table.render())

    no_delay = table.get("NoDelay")
    unlimited = table.get("Delay&UnlimitedBuffers")
    rcad = table.get("Delay&LimitedBuffers")

    # Case 1: the 15-hop transmission floor at every load.
    assert all(abs(v - 15.0) < 1e-9 for v in no_delay.y_values)
    # Case 2: the full budget, within sampling error of 465.
    assert all(abs(v - 465.0) / 465.0 < 0.05 for v in unlimited.y_values)
    # Case 3 sits strictly between floor and ceiling at every load.
    for x in table.x_values:
        assert no_delay.value_at(x) < rcad.value_at(x) <= unlimited.value_at(x) * 1.02
    # The paper's headline: at 1/lambda = 2, RCAD cuts latency by a
    # factor of ~2.5 (we accept 2 to 4).
    reduction = unlimited.value_at(2) / rcad.value_at(2)
    assert 2.0 < reduction < 4.5
    # Latency reduction fades as traffic slows.
    assert rcad.value_at(20) > rcad.value_at(2)
