"""Robustness benches: link loss and replication confidence intervals.

Two artifacts a careful reader of Figure 2 would ask for:

* the RCAD row under radio loss -- loss thins trunk traffic, reduces
  preemption, and therefore *erodes* the privacy boost while costing
  delivery;
* the headline Figure 2 cells with Student-t confidence intervals over
  independent seeds, demonstrating the case separation is not a
  one-seed artifact.
"""

from conftest import emit

from repro.experiments.robustness import figure2_replicated, link_loss_robustness


def test_link_loss_robustness(benchmark):
    rows = benchmark.pedantic(
        link_loss_robustness,
        kwargs=dict(
            loss_probabilities=(0.0, 0.02, 0.05, 0.1), n_packets=500, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    lines = ["# RCAD under i.i.d. per-hop link loss (1/lambda=2, flow S1)"]
    lines.append(f"{'loss':>6} {'delivered':>10} {'lost(all)':>10} "
                 f"{'MSE':>10} {'latency':>9} {'preempt':>9}")
    for row in rows:
        lines.append(
            f"{row.loss_probability:>6.2f} {row.delivered_fraction:>10.2f} "
            f"{row.lost_in_transit:>10} {row.mse:>10.0f} "
            f"{row.mean_latency:>9.1f} {row.preemptions:>9}")
    emit("robustness_link_loss", "\n".join(lines))

    assert rows[0].delivered_fraction == 1.0
    # Monotone erosion of delivery, preemption volume and privacy.
    deliveries = [row.delivered_fraction for row in rows]
    preemptions = [row.preemptions for row in rows]
    mses = [row.mse for row in rows]
    assert deliveries == sorted(deliveries, reverse=True)
    assert preemptions == sorted(preemptions, reverse=True)
    assert mses == sorted(mses, reverse=True)
    # Even at 10% loss the privacy boost survives (MSE >> case 2's 1.4e4).
    assert rows[-1].mse > 3e4


def test_figure2_confidence_intervals(benchmark):
    cells = benchmark.pedantic(
        figure2_replicated,
        kwargs=dict(n_replications=5, n_packets=1000, base_seed=100),
        rounds=1,
        iterations=1,
    )
    lines = ["# Figure 2 headline cells, 5 seeds, 95% Student-t intervals"]
    lines.append(f"{'case':>10} {'MSE mean':>10} {'+/-':>8} "
                 f"{'latency mean':>13} {'+/-':>7}")
    for cell in cells:
        lines.append(
            f"{cell.case:>10} {cell.mse.mean:>10.0f} {cell.mse.half_width:>8.0f} "
            f"{cell.latency.mean:>13.1f} {cell.latency.half_width:>7.1f}")
    emit("robustness_fig2_confidence", "\n".join(lines))

    by_case = {cell.case: cell for cell in cells}
    rcad, unlimited = by_case["rcad"], by_case["unlimited"]
    # The privacy gap dwarfs the seed noise.
    assert rcad.mse.ci_low > 3 * unlimited.mse.ci_high
    # And so does the latency gap, in the other direction.
    assert rcad.latency.ci_high < unlimited.latency.ci_low
    # Seed noise itself is modest (< 15% of the mean).
    assert rcad.mse.half_width < 0.15 * rcad.mse.mean
