"""Shared configuration for the benchmark harness.

Every figure/table of the paper has one benchmark module here.  Figure
benches regenerate their artifact at full paper scale (1000 packets per
source, the complete 1/lambda sweep), record the series as an aligned
text table (the textual equivalent of the paper's plot) and assert the
reproduction's shape criteria from DESIGN.md.  They use
``benchmark.pedantic(..., rounds=1)`` because a full regeneration is
tens of seconds; the micro-benchmarks in
``test_bench_micro_kernels.py`` use auto-calibrated rounds instead.

Recorded tables are printed in the terminal summary (so they survive
pytest's output capture) and written to ``benchmarks/results/*.txt``.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pathlib
import re

import pytest

_ARTIFACTS: list[tuple[str, str]] = []
_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Record a regenerated figure/table for display and archival.

    ``name`` becomes the results file name; ``text`` is the rendered
    table.  Called by the figure benches instead of bare ``print`` so
    the artifact survives pytest's output capture.
    """
    _ARTIFACTS.append((name, text))
    _RESULTS_DIR.mkdir(exist_ok=True)
    safe = re.sub(r"[^A-Za-z0-9._-]+", "_", name)
    (_RESULTS_DIR / f"{safe}.txt").write_text(text + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def full_scale():
    """Paper-scale parameters shared by the figure benches."""
    return {"n_packets": 1000, "seed": 0}


def pytest_terminal_summary(terminalreporter):
    if not _ARTIFACTS:
        return
    terminalreporter.section("regenerated paper artifacts")
    for name, text in _ARTIFACTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"===== {name} =====")
        for line in text.splitlines():
            terminalreporter.write_line(line)
