"""Shared configuration for the benchmark harness.

Every figure/table of the paper has one benchmark module here.  Figure
benches regenerate their artifact at full paper scale (1000 packets per
source, the complete 1/lambda sweep), record the series as an aligned
text table (the textual equivalent of the paper's plot) and assert the
reproduction's shape criteria from DESIGN.md.  They use
``benchmark.pedantic(..., rounds=1)`` because a full regeneration is
tens of seconds; the micro-benchmarks in
``test_bench_micro_kernels.py`` use auto-calibrated rounds instead.

Recorded tables are printed in the terminal summary (so they survive
pytest's output capture) and written to ``benchmarks/results/*.txt``.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import json
import pathlib
import re

import pytest

_ARTIFACTS: list[tuple[str, str]] = []
_RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_TIMINGS: dict[str, float] = {}


def emit(name: str, text: str) -> None:
    """Record a regenerated figure/table for display and archival.

    ``name`` becomes the results file name; ``text`` is the rendered
    table.  Called by the figure benches instead of bare ``print`` so
    the artifact survives pytest's output capture.
    """
    _ARTIFACTS.append((name, text))
    _RESULTS_DIR.mkdir(exist_ok=True)
    safe = re.sub(r"[^A-Za-z0-9._-]+", "_", name)
    (_RESULTS_DIR / f"{safe}.txt").write_text(text + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def full_scale():
    """Paper-scale parameters shared by the figure benches."""
    return {"n_packets": 1000, "seed": 0}


def pytest_runtest_logreport(report):
    """Collect per-test call durations for the runtime timing JSON."""
    if report.when == "call" and report.passed:
        _TIMINGS[report.nodeid] = report.duration


def pytest_sessionfinish(session, exitstatus):
    """Write ``results/BENCH_runtime.json``: wall-clock per benchmark.

    Includes pytest-benchmark statistics (min/mean/stddev/rounds) when
    the plugin collected any, alongside the coarse call durations, so
    serial-vs-parallel and vectorized-vs-scalar comparisons live in one
    machine-readable artifact.
    """
    if not _TIMINGS:
        return
    payload: dict[str, object] = {
        "call_durations_seconds": dict(sorted(_TIMINGS.items())),
    }
    benchsession = getattr(session.config, "_benchmarksession", None)
    if benchsession is not None and getattr(benchsession, "benchmarks", None):
        stats = {}
        for bench in benchsession.benchmarks:
            try:
                stats[bench.fullname] = {
                    "min": bench.stats.min,
                    "mean": bench.stats.mean,
                    "stddev": bench.stats.stddev,
                    "rounds": bench.stats.rounds,
                }
            except (AttributeError, TypeError):
                continue  # plugin disabled or stats not collected
        if stats:
            payload["benchmark_stats"] = stats
    _RESULTS_DIR.mkdir(exist_ok=True)
    (_RESULTS_DIR / "BENCH_runtime.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def pytest_terminal_summary(terminalreporter):
    if not _ARTIFACTS:
        return
    terminalreporter.section("regenerated paper artifacts")
    for name, text in _ARTIFACTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"===== {name} =====")
        for line in text.splitlines():
            terminalreporter.write_line(line)
