"""Extension bench: privacy per flow -- path length is the multiplier.

The paper reports flow S1 only; this bench scores all four flows of
the same runs.  Both the unlimited-buffer variance (h/mu^2 per hop)
and RCAD's preemption bias accumulate per hop, so temporal privacy is
*positional*: the 22-hop flow S2 enjoys several times the MSE of the
9-hop flow S3.  Deployment reading: assets observed near the sink are
the vulnerable ones.
"""

from conftest import emit

from repro.experiments.per_flow import per_flow_privacy


def test_per_flow_privacy(benchmark, full_scale):
    def run():
        return {
            case: per_flow_privacy(
                interarrival=2.0, case=case,
                n_packets=full_scale["n_packets"], seed=full_scale["seed"],
            )
            for case in ("unlimited", "rcad")
        }

    by_case = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["# Per-flow privacy at 1/lambda=2 (all four paper flows)"]
    lines.append(f"{'case':>10} {'flow':>5} {'hops':>5} {'MSE':>10} {'latency':>9}")
    for case, rows in by_case.items():
        for row in rows:
            lines.append(f"{case:>10} {row.label:>5} {row.hop_count:>5} "
                         f"{row.mse:>10.0f} {row.mean_latency:>9.1f}")
    emit("per_flow_privacy", "\n".join(lines))

    for case, rows in by_case.items():
        mses = [row.mse for row in rows]
        assert mses == sorted(mses), case  # monotone in hop count
    # The depth multiplier is substantial: S2 (22 hops) has at least
    # double the MSE of S3 (9 hops) in both regimes.
    for case, rows in by_case.items():
        by_label = {row.label: row for row in rows}
        assert by_label["S2"].mse > 2 * by_label["S3"].mse, case
    # Case-2 follows the variance law h/mu^2 within a loose factor.
    for row in by_case["unlimited"]:
        assert 0.5 * 900 * row.hop_count < row.mse < 2.0 * 900 * row.hop_count