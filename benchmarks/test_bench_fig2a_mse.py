"""Figure 2(a): adversary MSE vs traffic load, three evaluation cases.

Paper shape to reproduce (flow S1, baseline adversary, 1/mu = 30,
k = 10, 1000 packets/source):

* NoDelay: MSE identically 0 (the adversary subtracts h*tau exactly);
* Delay&UnlimitedBuffers: small, roughly load-independent MSE -- only
  the delay *variance* h/mu^2 = 13.5e3 is left;
* Delay&LimitedBuffers (RCAD): MSE on the 10^5 scale at high traffic
  (1/lambda = 2), shrinking toward case 2 as traffic slows, because
  preemption stops once rho = lambda_agg/mu drops below k.
"""

from conftest import emit

from repro.experiments.common import PAPER_INTERARRIVALS
from repro.experiments.fig2 import figure2_mse


def test_fig2a_mse(benchmark, full_scale):
    table = benchmark.pedantic(
        figure2_mse,
        kwargs=dict(interarrivals=PAPER_INTERARRIVALS, **full_scale),
        rounds=1,
        iterations=1,
    )
    emit("fig2a_mse", table.render())

    no_delay = table.get("NoDelay")
    unlimited = table.get("Delay&UnlimitedBuffers")
    rcad = table.get("Delay&LimitedBuffers")

    # Case 1 is exactly zero everywhere.
    assert all(abs(v) < 1e-9 for v in no_delay.y_values)
    # Case 2 sits at the delay-variance scale (h/mu^2 = 13.5e3) at
    # every load: the adversary's model is correct, only noise remains.
    assert all(0.5e4 < v < 2.5e4 for v in unlimited.y_values)
    # Case 3 at the highest load reaches the paper's 10^5 scale and
    # dominates case 2 by an order of magnitude.
    assert rcad.value_at(2) > 5e4
    assert rcad.value_at(2) > 5 * unlimited.value_at(2)
    # The privacy gain decays as traffic slows (preemption vanishes):
    # by 1/lambda = 20 RCAD is back near case 2.
    assert rcad.value_at(20) < 2 * unlimited.value_at(20)
    # Monotone trend across the sweep ends.
    assert rcad.value_at(2) > rcad.value_at(10) > rcad.value_at(20) * 0.8
