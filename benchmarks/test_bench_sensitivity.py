"""Sensitivity benches: workload, buffer size and the 1/mu frontier.

Three parameter studies the paper's evaluation implies but does not
run, each phrased as a regenerable table:

* the Figure 2 headline cell under four traffic models -- the privacy
  boost is not an artifact of periodic sources;
* the buffer-size sweep -- the boost *is* the memory shortage: it
  decays monotonically in k and vanishes once k clears the trunk's
  offered load (rho = 60 Erlang at 1/lambda = 2);
* the privacy-latency frontier over the design knob 1/mu -- RCAD
  dominates the unlimited-buffer frontier at long delays (more privacy
  at less latency), because preemption caps latency while model
  mismatch keeps growing.
"""

from conftest import emit

from repro.experiments.sensitivity import (
    buffer_size_sweep,
    mean_delay_sweep,
    workload_sensitivity,
)


def test_workload_sensitivity(benchmark):
    rows = benchmark.pedantic(
        workload_sensitivity,
        kwargs=dict(interarrival=2.0, n_packets=500, seed=0),
        rounds=1,
        iterations=1,
    )
    lines = ["# RCAD headline cell across workloads (1/lambda=2, flow S1)"]
    lines.append(f"{'workload':>10} {'MSE':>10} {'latency':>9} {'preempt':>9}")
    for row in rows:
        lines.append(f"{row.workload:>10} {row.mse:>10.0f} "
                     f"{row.mean_latency:>9.1f} {row.preemptions:>9}")
    emit("sensitivity_workloads", "\n".join(lines))

    for row in rows:
        assert row.mse > 3e4, row.workload  # boost survives everywhere
        assert row.preemptions > 1000, row.workload


def test_buffer_size_sweep(benchmark):
    rows = benchmark.pedantic(
        buffer_size_sweep,
        kwargs=dict(capacities=(2, 5, 10, 20, 40, 80), n_packets=500, seed=0),
        rounds=1,
        iterations=1,
    )
    lines = ["# RCAD vs buffer capacity (1/lambda=2, flow S1; trunk rho=60)"]
    lines.append(f"{'k':>5} {'MSE':>10} {'latency':>9} {'preempt':>9}")
    for row in rows:
        lines.append(f"{row.capacity:>5} {row.mse:>10.0f} "
                     f"{row.mean_latency:>9.1f} {row.preemptions:>9}")
    emit("sensitivity_buffer_size", "\n".join(lines))

    mses = [row.mse for row in rows]
    latencies = [row.mean_latency for row in rows]
    assert mses == sorted(mses, reverse=True)
    assert latencies == sorted(latencies)
    # k = 80 clears the 60-Erlang trunk: preemption (essentially) gone,
    # privacy back to the case-2 variance scale.
    assert rows[-1].preemptions < rows[0].preemptions / 20
    assert rows[-1].mse < 2.5e4
    # k = 2 is the privacy extreme: MSE well above the paper's k = 10.
    assert rows[0].mse > 1.3 * rows[2].mse


def test_mean_delay_frontier(benchmark):
    rows = benchmark.pedantic(
        mean_delay_sweep,
        kwargs=dict(
            mean_delays=(5.0, 15.0, 30.0, 60.0, 120.0),
            interarrival=4.0,
            n_packets=400,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    lines = ["# Privacy-latency frontier over 1/mu (1/lambda=4, flow S1)"]
    lines.append(f"{'1/mu':>7} {'case':>10} {'MSE':>10} {'latency':>9}")
    for row in rows:
        lines.append(f"{row.mean_delay:>7g} {row.case:>10} "
                     f"{row.mse:>10.0f} {row.mean_latency:>9.1f}")
    emit("sensitivity_mean_delay", "\n".join(lines))

    unlimited = {r.mean_delay: r for r in rows if r.case == "unlimited"}
    rcad = {r.mean_delay: r for r in rows if r.case == "rcad"}
    # Case-2 privacy is pure variance: grows ~quadratically with 1/mu.
    assert 2.5 < unlimited[60.0].mse / unlimited[30.0].mse < 7.0
    # At short delays (no saturation) the two cases coincide.
    assert rcad[5.0].mse < 2 * unlimited[5.0].mse
    # At long delays RCAD dominates the frontier: strictly more
    # privacy at strictly less latency.
    for mean_delay in (60.0, 120.0):
        assert rcad[mean_delay].mse > unlimited[mean_delay].mse
        assert rcad[mean_delay].mean_latency < unlimited[mean_delay].mean_latency