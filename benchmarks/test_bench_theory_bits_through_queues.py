"""Section 3.2 / Equation (4): the bits-through-queues bound.

Regenerates the paper's central analytic claim: for a Poisson(lambda)
source delayed by i.i.d. Exp(mu), the j-th packet leaks at most
``ln(1 + j mu / lambda)`` nats, so tuning mu small relative to lambda
controls the adversary's information.  We estimate I(X_j; Z_j)
empirically (Kraskov estimator over thousands of process realizations)
and verify it sits below the bound at every packet index, at the
paper's own operating point (lambda = 0.5, 1/mu = 30).
"""

from conftest import emit

from repro.experiments.theory import validate_bits_through_queues
from repro.infotheory.bounds import cumulative_bits_through_queues_bound


def test_bits_through_queues_bound(benchmark):
    table = benchmark.pedantic(
        validate_bits_through_queues,
        kwargs=dict(
            creation_rate=0.5,
            delay_rate=1.0 / 30.0,
            packet_indices=(1, 2, 5, 10, 20, 50),
            n_realizations=4000,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    total = cumulative_bits_through_queues_bound(50, 0.5, 1.0 / 30.0)
    emit(
        "theory_bits_through_queues",
        table.render()
        + f"\ncumulative Eq.(4) bound over 50 packets: {total:.2f} nats",
    )

    empirical = table.get("empirical I(Xj;Zj)")
    bound = table.get("ln(1 + j*mu/lambda)")
    for x in table.x_values:
        assert empirical.value_at(x) <= bound.value_at(x) + 0.05
    # The bound grows with the packet index (X_j spreads out)...
    assert list(bound.y_values) == sorted(bound.y_values)
    # ...and the empirical leakage grows with it.
    assert empirical.value_at(50) > empirical.value_at(1)


def test_delay_design_knob(benchmark):
    """Smaller mu (longer delays) provably shrinks the leakage budget."""

    def sweep_mu():
        return {
            mean_delay: cumulative_bits_through_queues_bound(
                1000, creation_rate=0.5, delay_rate=1.0 / mean_delay
            )
            for mean_delay in (3.0, 30.0, 300.0)
        }

    budgets = benchmark(sweep_mu)
    lines = ["# Eq.(4) cumulative leakage budget for 1000 packets, lambda=0.5"]
    for mean_delay, nats in budgets.items():
        lines.append(f"  1/mu = {mean_delay:>5g}: {nats:10.1f} nats")
    emit("theory_delay_design_knob", "\n".join(lines))
    values = [budgets[m] for m in (3.0, 30.0, 300.0)]
    assert values == sorted(values, reverse=True)
