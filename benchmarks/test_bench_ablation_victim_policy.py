"""Ablation: RCAD victim-selection policy (design choice of §5).

The paper preempts the packet with the shortest remaining delay so
that "the resulting delay times for that node are the closest to the
original distribution".  This bench swaps in the alternatives at the
paper's heaviest load and reports adversary MSE, latency, preemption
volume, and the Kolmogorov-Smirnov distance between realized
end-to-end artificial delays and the intended Erlang(h, mu) shape.
"""

from conftest import emit

from repro.experiments.ablations import victim_policy_ablation


def test_victim_policy_ablation(benchmark):
    rows = benchmark.pedantic(
        victim_policy_ablation,
        kwargs=dict(interarrival=2.0, n_packets=600, seed=0),
        rounds=1,
        iterations=1,
    )
    lines = ["# RCAD victim policy ablation (1/lambda=2, k=10, flow S1)"]
    lines.append(f"{'policy':>20} {'MSE':>12} {'latency':>10} "
                 f"{'preemptions':>12} {'KS vs Erlang':>13}")
    for row in rows:
        lines.append(
            f"{row.policy:>20} {row.mse:>12.0f} {row.mean_latency:>10.1f} "
            f"{row.preemptions:>12} {row.delay_shape_distance:>13.3f}")
    emit("ablation_victim_policy", "\n".join(lines))

    by_policy = {row.policy: row for row in rows}
    shortest = by_policy["shortest-remaining"]
    longest = by_policy["longest-remaining"]
    # The paper's design claim: shortest-remaining keeps realized
    # delays closest to the advertised distribution.
    assert shortest.delay_shape_distance == min(
        r.delay_shape_distance for r in rows
    )
    assert shortest.delay_shape_distance < longest.delay_shape_distance
    # All policies preempt heavily at this load and deliver everything.
    assert all(row.preemptions > 1000 for row in rows)
