"""Ablation: drop-tail (the §4 loss model) vs RCAD preemption (§5).

The paper motivates preemption by noting that a full buffer must
otherwise drop packets.  At equal buffer capacity this bench shows the
trade RCAD makes: 100% delivery with high adversary MSE versus
drop-tail's load-dependent loss.
"""

from conftest import emit

from repro.experiments.ablations import drop_vs_preempt_ablation


def test_drop_vs_preempt(benchmark):
    rows = benchmark.pedantic(
        drop_vs_preempt_ablation,
        kwargs=dict(interarrivals=(2.0, 4.0, 8.0, 16.0), n_packets=500, seed=0),
        rounds=1,
        iterations=1,
    )
    lines = ["# Drop-tail vs RCAD at k=10 (flow S1, 500 packets offered)"]
    lines.append(f"{'1/lambda':>9} {'rcad dlvd':>10} {'rcad MSE':>12} "
                 f"{'drop dlvd':>10} {'drop frac':>10} {'drop MSE':>12}")
    for row in rows:
        lines.append(
            f"{row.interarrival:>9g} {row.rcad_delivered:>10} "
            f"{row.rcad_mse:>12.0f} {row.droptail_delivered:>10} "
            f"{row.droptail_drop_fraction:>10.3f} {row.droptail_mse:>12.0f}")
    emit("ablation_drop_vs_preempt", "\n".join(lines))

    fast = rows[0]
    # RCAD never loses a packet; drop-tail loses a large fraction at
    # the paper's heaviest load.
    assert fast.rcad_delivered == 500
    assert fast.droptail_drop_fraction > 0.3
    # Loss fades as traffic slows -- but note it stays substantial for
    # longer than single-queue intuition suggests, because per-node
    # Erlang loss compounds over the 15-hop path.
    fractions = [row.droptail_drop_fraction for row in rows]
    assert fractions == sorted(fractions, reverse=True)
    assert rows[-1].droptail_drop_fraction < rows[0].droptail_drop_fraction / 2
