"""Section 3.1 theory: Equation (2) and the delay-distribution choice.

Regenerates two analytic artifacts of the paper's formulation:

* the entropy-power-inequality lower bound on I(X; Z) against the
  empirically estimated leakage (the empirical value must respect the
  floor, and both must fall as the mean delay grows);
* the max-entropy argument for exponential delays: at equal mean, the
  exponential family leaks the least mutual information of
  {exponential, uniform, constant}.
"""

from conftest import emit

from repro.experiments.theory import (
    delay_distribution_comparison,
    validate_epi_bound,
)


def test_epi_lower_bound(benchmark):
    table = benchmark.pedantic(
        validate_epi_bound,
        kwargs=dict(
            signal_std=10.0,
            delay_means=(5.0, 15.0, 30.0, 60.0),
            n_samples=8000,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    emit("theory_epi_bound", table.render())

    empirical = table.get("empirical I(X;Z)")
    floor = table.get("EPI lower bound")
    for x in table.x_values:
        # The information inequality: estimate sits above the floor
        # (small tolerance for estimator bias).
        assert empirical.value_at(x) >= floor.value_at(x) - 0.05
    # Longer delays leak monotonically less.
    values = list(empirical.y_values)
    assert values == sorted(values, reverse=True)


def test_exponential_delay_leaks_least(benchmark):
    leakage = benchmark.pedantic(
        delay_distribution_comparison,
        kwargs=dict(mean_delay=30.0, signal_std=10.0, n_samples=8000, seed=1),
        rounds=1,
        iterations=1,
    )
    lines = ["# max-entropy argument: I(X; X+Y) per delay family, equal mean 30"]
    for family, value in sorted(leakage.items(), key=lambda kv: kv[1]):
        lines.append(f"  {family:>12}: {value:.3f} nats")
    emit("theory_delay_families", "\n".join(lines))

    assert leakage["exponential"] <= leakage["uniform"] + 0.03
    # A constant delay is transparent to a deployment-aware adversary.
    assert leakage["constant"] > 3 * leakage["exponential"]
