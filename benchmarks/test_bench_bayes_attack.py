"""Extension bench: the empirical-Bayes per-packet attack.

Chains the paper's reference [1] (EM distribution reconstruction) into
a per-packet estimator: learn the creation-time prior from the arrival
histogram, then estimate each packet by its posterior mean.  Against
bursty traffic this is the strongest prior-exploiting attack in the
library -- and the bench shows RCAD still blunts it, because the
learned prior is deconvolved with a delay model preemption has
invalidated.
"""

from conftest import emit

from repro.experiments.bayes_attack import bayes_attack_experiment


def test_bayes_attack(benchmark):
    rows = benchmark.pedantic(
        bayes_attack_experiment,
        kwargs=dict(n_packets=500, seed=0),
        rounds=1,
        iterations=1,
    )
    lines = ["# Empirical-Bayes attack on a bimodal flow (S1 path)"]
    lines.append(f"{'case':>10} {'adversary':>16} {'MSE':>10} {'mean error':>11}")
    for row in rows:
        lines.append(f"{row.case:>10} {row.adversary:>16} "
                     f"{row.mse:>10.0f} {row.mean_error:>11.1f}")
    emit("bayes_attack", "\n".join(lines))

    by_cell = {(row.case, row.adversary): row for row in rows}
    # Undefended network: exact recovery regardless of cleverness.
    assert by_cell[("no-delay", "baseline")].mse < 1e-9
    # With the correct delay model, the Bayes attack exploits the
    # bursty prior and beats mean subtraction by a wide margin.
    assert (
        by_cell[("unlimited", "empirical-bayes")].mse
        < 0.5 * by_cell[("unlimited", "baseline")].mse
    )
    # RCAD blunts even this attack: its MSE stays an order of
    # magnitude above the attack's unlimited-buffer performance.
    assert (
        by_cell[("rcad", "empirical-bayes")].mse
        > 5 * by_cell[("unlimited", "empirical-bayes")].mse
    )
    # And the residual bias betrays the invalidated delay model.
    assert by_cell[("rcad", "empirical-bayes")].mean_error < -100.0
