"""Figure 3: baseline vs adaptive adversary under RCAD.

Paper shape to reproduce: the adaptive adversary (Erlang-loss switch at
threshold 0.1, saturation estimate n k / lambda_tot) "can significantly
reduce (but not eliminate) the estimation errors, especially at higher
traffic rates (lower inter-arrival times) where preemption is more
likely"; at low traffic the two adversaries coincide.
"""

from conftest import emit

from repro.experiments.common import PAPER_INTERARRIVALS
from repro.experiments.fig3 import figure3


def test_fig3_adaptive_adversary(benchmark, full_scale):
    table = benchmark.pedantic(
        figure3,
        kwargs=dict(
            interarrivals=PAPER_INTERARRIVALS, include_path_aware=True, **full_scale
        ),
        rounds=1,
        iterations=1,
    )
    emit("fig3_adaptive_adversary", table.render())

    baseline = table.get("BaselineAdversary")
    adaptive = table.get("AdaptiveAdversary")
    path_aware = table.get("PathAware(ext)")

    # Adaptive never does worse (tiny tolerance for estimator noise).
    for x in table.x_values:
        assert adaptive.value_at(x) <= baseline.value_at(x) * 1.05
    # Significant reduction at the highest traffic rate...
    assert adaptive.value_at(2) < 0.8 * baseline.value_at(2)
    # ...but not elimination: RCAD retains real privacy.
    assert adaptive.value_at(2) > 1e4
    # The two coincide once preemption is rare.
    assert adaptive.value_at(20) == baseline.value_at(20)
    # The extension adversary (full per-hop knowledge) dominates the
    # paper's adaptive adversary at high load, yet privacy survives.
    assert path_aware.value_at(2) < adaptive.value_at(2)
    assert path_aware.value_at(2) > 1e3
