"""Section 4: queueing analysis validated against discrete-event runs.

Three artifacts:

* M/M/infinity occupancy (mean, sojourn, full distribution) --
  simulation vs the Poisson(rho) closed form at the paper's operating
  point (lambda = 0.5, 1/mu = 30, rho = 15);
* Equation (5), the Erlang loss formula -- simulated M/M/k/k blocking
  vs E(rho, k) across loads spanning light to heavily saturated;
* the routing-tree composition -- per-node occupancy of the *full WSN
  simulator* on the Figure 1 topology vs the QueueTreeModel's
  rho_i = lambda_i / mu prediction (superposition + Burke, end to end).
"""

from conftest import emit

import pytest

from repro.experiments.queueing_validation import (
    erlang_loss_validation,
    mm_infinity_validation,
    tree_occupancy_validation,
)


def test_mm_infinity_closed_form(benchmark):
    report = benchmark.pedantic(
        mm_infinity_validation,
        kwargs=dict(
            arrival_rate=0.5, service_rate=1.0 / 30.0, horizon=60_000.0, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    lines = ["# M/M/inf validation (lambda=0.5, 1/mu=30)"]
    for key, value in report.items():
        lines.append(f"  {key:>18}: {value:10.4f}")
    emit("queueing_mm_infinity", "\n".join(lines))

    assert report["simulated_mean"] == pytest.approx(
        report["analytic_mean"], rel=0.05
    )
    assert report["simulated_sojourn"] == pytest.approx(
        report["analytic_sojourn"], rel=0.05
    )
    assert report["tv_distance"] < 0.05


def test_erlang_loss_formula(benchmark):
    table = benchmark.pedantic(
        erlang_loss_validation,
        kwargs=dict(
            offered_loads=(2.0, 5.0, 10.0, 15.0, 25.0),
            capacity=10,
            horizon=60_000.0,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    emit("queueing_erlang_loss", table.render())

    analytic = table.get("Erlang B (analytic)")
    simulated = table.get("M/M/k/k simulation")
    for x in table.x_values:
        assert simulated.value_at(x) == pytest.approx(
            analytic.value_at(x), abs=0.02
        )
    # Blocking grows with offered load.
    assert list(analytic.y_values) == sorted(analytic.y_values)


def test_tree_model_against_wsn_simulator(benchmark):
    table = benchmark.pedantic(
        tree_occupancy_validation,
        kwargs=dict(interarrival=10.0, mean_delay=30.0, n_packets=3000, seed=0),
        rounds=1,
        iterations=1,
    )
    emit("queueing_tree_model", table.render())

    predicted = table.get("QueueTreeModel rho_i")
    measured = table.get("simulated occupancy")
    # Aggregate occupancy along the path within 15%.
    assert sum(measured.y_values) == pytest.approx(
        sum(predicted.y_values), rel=0.15
    )
    # The accumulation gradient: near-sink occupancy clearly above
    # near-source occupancy, in both model and simulation.
    assert predicted.y_values[-1] > 1.5 * predicted.y_values[0]
    assert measured.y_values[-1] > 1.5 * measured.y_values[0]
