"""Figure 1: regenerate the evaluation topology.

Rebuilds the Figure 1 deployment and routing tree, prints the flow
table and the traffic-accumulation profile, and asserts the facts the
figure conveys: hop counts 15/22/9/11 and progressive merging.
"""

from conftest import emit

from repro.experiments.fig1 import topology_summary
from repro.net.routing import greedy_grid_tree
from repro.net.topology import paper_topology


def _regenerate():
    deployment = paper_topology()
    tree = greedy_grid_tree(deployment, width=12)
    return topology_summary(deployment, tree)


def test_fig1_topology(benchmark):
    summary = benchmark(_regenerate)
    emit("fig1_topology", summary.render())

    assert all(flow.matches_paper for flow in summary.flows)
    assert sorted(f.hop_count for f in summary.flows) == [9, 11, 15, 22]
    assert summary.n_nodes == 144
    # Progressive merging: flows-per-node grows monotonically along
    # S1's path and all four flows share the near-sink trunk.
    counts = [count for _, count in summary.trunk_flow_counts]
    assert counts == sorted(counts)
    assert counts[0] >= 1 and counts[-1] == 4
